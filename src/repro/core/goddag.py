"""The GODDAG document and its builder.

:class:`GoddagDocument` is the in-memory representation of a concurrent
XML document: one immutable text, a shared root, a shared leaf table, and
one properly-nested element tree per markup hierarchy.  It provides the
DOM-style API of the paper (children/parents/traversal), the dynamic
editing primitives used by the xTagger layer (:meth:`insert_element`,
:meth:`remove_element`), and the cross-hierarchy span queries behind the
Extended XPath axes.

:class:`GoddagBuilder` constructs documents either from parser events
(preserving source nesting) or from bags of offset annotations (nesting
derived from spans), which is how every import driver and the synthetic
workload generator produce GODDAGs.

Placement conventions (documented here once, relied upon everywhere):

* Sibling order is ``(start, zero-width-first, -end, birth ordinal)``.
* A zero-width element anchored at offset ``a`` (a surviving milestone)
  belongs to the deepest element ``e`` with ``e.start <= a < e.end`` when
  it enters through an offset-based path; source-driven paths keep the
  nesting the source expressed.
* Inserting an element with the exact span of an existing one nests the
  new element *inside* the existing one.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from contextlib import contextmanager
from heapq import merge as heap_merge
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import HierarchyError, MarkupConflictError, SpanError
from ..obs.metrics import metrics as _metrics
from .changes import ChangeRecord, InsertMarkup, RemoveMarkup, SetAttribute
from .hierarchy import Hierarchy
from .intervals import StaticIntervalIndex
from .node import Element, Leaf, Node, Root
from .spans import Span, SpanTable

#: Upper bound of the per-document delta journal.  Older entries fall
#: off; a consumer whose snapshot predates the journal window gets
#: ``None`` from :meth:`GoddagDocument.changes_since` and must rebuild.
JOURNAL_LIMIT = 512


def _sibling_key(element: Element) -> tuple[int, int, int, int]:
    """Total order of siblings; see the module docstring."""
    return (
        element.start,
        0 if element.is_empty else 1,
        -element.end,
        element.ordinal,
    )


class GoddagDocument:
    """A multihierarchical document-centric XML document in memory."""

    def __init__(self, text: str, root_tag: str = "r") -> None:
        self._text = text
        self._spans = SpanTable(len(text))
        self._hierarchies: dict[str, Hierarchy] = {}
        self._h_top: dict[str, list[Element]] = {}
        self._h_all: dict[str, list[Element]] = {}
        self._h_index: dict[str, StaticIntervalIndex[Element] | None] = {}
        self._ordinal = 0
        self._version = 0
        self._ordered_cache: list[Element] = []
        self._ordered_cache_version = -1
        self._ordinal_map: dict[int, Element] = {}
        self._ordinal_map_version = -1
        self._index_manager = None
        # Delta journal: (version, record) pairs for tracked mutations.
        # _journal_floor is the newest version with no record — deltas
        # can reconstruct any state from the floor forward, nothing older.
        # journal_tracking=False skips record construction entirely
        # (mutations become untracked: consumers always rebuild) — for
        # never-indexed bulk editing where the re-pathing snapshots in
        # insert/remove records would be pure overhead.
        self.journal_tracking = True
        self._journal: list[tuple[int, ChangeRecord]] = []
        self._journal_floor = 0
        self._speculating = False
        # Version ranges annihilated by insert/remove pair cancellation:
        # a consumer that synced strictly inside such a range cannot be
        # bridged by the remaining records (see touch).
        self._journal_gaps: list[tuple[int, int]] = []
        self._root = Root(self, root_tag)

    # -- identity & bookkeeping ------------------------------------------------

    @property
    def text(self) -> str:
        """The full document text (immutable)."""
        return self._text

    @property
    def length(self) -> int:
        return len(self._text)

    @property
    def spans(self) -> SpanTable:
        """The shared leaf/boundary table."""
        return self._spans

    @property
    def root(self) -> Root:
        """The root element shared by all hierarchies."""
        return self._root

    @property
    def version(self) -> int:
        """Monotone counter bumped by every structural or attribute change."""
        return self._version

    def touch(self, change: ChangeRecord | None = None) -> None:
        """Bump the document version (called by mutators).

        Version bumps invalidate the version-stamped caches: the
        ordered-element cache, cached order keys, and an attached index
        manager.  The per-hierarchy interval indexes are reset
        explicitly by the structural mutators (see :meth:`_dirty`).

        Tracked mutations pass their :class:`~repro.core.changes.ChangeRecord`;
        it enters the bounded delta journal so index consumers can catch
        up incrementally.  A bare ``touch()`` is an *untracked* mutation:
        it resets the journal floor, forcing consumers behind it into a
        full rebuild (deltas could no longer reconstruct the state).
        """
        self._version += 1
        if change is None:
            if self._journal:
                self._journal.clear()
            self._journal_floor = self._version
            self._journal_gaps.clear()
        else:
            # Inside a declared speculation region (prevalidation and
            # tag-menu trials), a removal that exactly cancels the
            # immediately preceding insertion annihilates the pair: with
            # no record in between, the net transformation is the
            # identity, so consumers that span the whole pair skip both
            # — the trials no longer flood the journal or push a session
            # over the delta-rebuild threshold.  A consumer that synced
            # *inside* the pair saw the insertion and still needs the
            # removal, so the range becomes a gap that forces it to
            # rebuild instead.
            if (
                self._speculating
                and self._journal
                and isinstance(change, RemoveMarkup)
                and isinstance(self._journal[-1][1], InsertMarkup)
                and self._journal[-1][1].element is change.element
            ):
                inserted_at, _ = self._journal.pop()
                floor = self._journal_floor
                gaps = [(lo, hi) for lo, hi in self._journal_gaps
                        if hi > floor]
                gaps.append((inserted_at, self._version))
                if len(gaps) > 64:
                    # Degenerate churn: cheaper to declare the journal
                    # broken than to track an unbounded gap list.
                    self._journal.clear()
                    self._journal_floor = self._version
                    gaps = []
                self._journal_gaps = gaps
                return
            self._journal.append((self._version, change))
            if len(self._journal) > JOURNAL_LIMIT:
                del self._journal[0]
                self._journal_floor = self._journal[0][0] - 1
            if _metrics.enabled:
                _metrics.incr("journal.records")
                _metrics.observe("journal.depth", len(self._journal))

    @contextmanager
    def speculation(self) -> Iterator[None]:
        """Declare a speculative trial region (see :meth:`touch`).

        Within the region, an insert immediately undone by its matching
        remove annihilates in the delta journal instead of accumulating
        two records — the prevalidation checker and the tag menu wrap
        their try-insert-then-roll-back probes in this.
        """
        previous = self._speculating
        self._speculating = True
        try:
            yield
        finally:
            self._speculating = previous

    def changes_since(self, version: int) -> list[ChangeRecord] | None:
        """Change records for every version bump after ``version``.

        Returns ``None`` when the journal cannot bridge the gap — the
        snapshot predates the journal window, or an untracked mutation
        happened since — in which case derived structures must rebuild.
        """
        if version < self._journal_floor:
            return None
        if any(lo <= version < hi for lo, hi in self._journal_gaps):
            return None  # synced inside a cancelled insert/remove pair
        lo = bisect_right(self._journal, version, key=lambda entry: entry[0])
        return [record for _, record in self._journal[lo:]]

    def _label_path(self, element: Element) -> tuple[str, ...]:
        """Root-to-element tag sequence within the element's hierarchy."""
        if element.is_root:
            return ()
        tags: list[str] = []
        node: Element | None = element
        while node is not None:
            tags.append(node.tag)
            node = node._parent
        tags.reverse()
        return tuple(tags)

    @property
    def index_manager(self):
        """The attached :class:`~repro.index.manager.IndexManager`, if any.

        The Extended XPath engine consults this automatically; query
        results are identical with and without one attached.
        """
        return self._index_manager

    def attach_index(self, manager) -> None:
        """Attach a query-acceleration index manager to this document."""
        self._index_manager = manager

    def detach_index(self) -> None:
        """Detach the index manager (queries return to unindexed paths)."""
        self._index_manager = None

    def _next_ordinal(self) -> int:
        """The next birth ordinal (1-based; the shared root is 0).

        Ordinals are the document's *persistent identity*: storage
        backends persist them as ``elem_id`` and reconstruction restores
        them, so the counter must never re-issue a loaded value.  The
        builder bumps ``_ordinal`` past the maximum explicit ordinal
        before materializing (see :meth:`GoddagBuilder.build`), which
        keeps ``save → load → edit`` sessions collision-free.
        """
        self._ordinal += 1
        return self._ordinal

    def element_by_ordinal(self, ordinal: int) -> Element | None:
        """The element whose birth ordinal (= persistent ``elem_id``) is
        ``ordinal``, or ``None`` when no such element is attached.

        This is the keyed identity lookup backing cross-session node
        handles: an ordinal observed before a save names the same
        element after ``GoddagStore.load``, so consumers resolve handles
        directly instead of positionally re-matching spans or document
        order.  Ordinal 0 resolves to the shared root.  O(1) per
        lookup: a stale map catches up from the delta journal (one dict
        op per structural record) and pays a full rebuild only when the
        journal cannot bridge the gap — the same contract as the
        indexes.
        """
        if ordinal == 0:
            return self._root
        if self._ordinal_map_version != self._version:
            changes = (
                self.changes_since(self._ordinal_map_version)
                if self._ordinal_map_version >= 0 else None
            )
            if changes is None:
                self._ordinal_map = {
                    element.ordinal: element
                    for elements in self._h_all.values()
                    for element in elements
                }
            else:
                for change in changes:
                    if isinstance(change, InsertMarkup):
                        self._ordinal_map[change.ordinal] = change.element
                    elif isinstance(change, RemoveMarkup):
                        self._ordinal_map.pop(change.ordinal, None)
            self._ordinal_map_version = self._version
        return self._ordinal_map.get(ordinal)

    # -- hierarchies ---------------------------------------------------------------

    def add_hierarchy(self, name: str, dtd=None) -> Hierarchy:
        """Register a markup hierarchy; rank follows registration order."""
        if not name:
            raise HierarchyError("hierarchy name must be non-empty")
        if name in self._hierarchies:
            raise HierarchyError(f"duplicate hierarchy {name!r}")
        hierarchy = Hierarchy(name, rank=len(self._hierarchies), dtd=dtd)
        self._hierarchies[name] = hierarchy
        self._h_top[name] = []
        self._h_all[name] = []
        self._h_index[name] = None
        self.touch()
        return hierarchy

    def hierarchy(self, name: str) -> Hierarchy:
        """Look up a hierarchy by name."""
        try:
            return self._hierarchies[name]
        except KeyError:
            raise HierarchyError(f"unknown hierarchy {name!r}") from None

    def hierarchy_names(self) -> tuple[str, ...]:
        """All hierarchy names in rank order."""
        return tuple(self._hierarchies)

    def has_hierarchy(self, name: str) -> bool:
        return name in self._hierarchies

    def _rank(self, name: str) -> int:
        return self._hierarchies[name].rank

    # -- leaves ------------------------------------------------------------------

    def leaf(self, index: int) -> Leaf:
        """The leaf at position ``index`` of the leaf sequence."""
        return Leaf(self, index)

    def leaves(self) -> list[Leaf]:
        """All leaves, left to right."""
        return [Leaf(self, i) for i in range(len(self._spans))]

    def leaf_at(self, offset: int) -> Leaf:
        """The leaf containing character position ``offset``."""
        return Leaf(self, self._spans.leaf_index_at(offset))

    def leaves_in(self, span: Span) -> list[Leaf]:
        """The leaves tiling ``span`` (span boundaries must exist)."""
        first, last = self._spans.leaf_range(span)
        return [Leaf(self, i) for i in range(first, last)]

    def leaves_in_range(self, start: int, end: int) -> list[Leaf]:
        """Leaves tiling ``[start, end)``; empty for degenerate ranges."""
        if start >= end:
            return []
        return self.leaves_in(Span(start, end))

    def leaf_parents(self, leaf: Leaf, hierarchy: str | None = None) -> list[Element]:
        """Innermost covering element per hierarchy; root where uncovered.

        The shared root is reported at most once.
        """
        names = (hierarchy,) if hierarchy else self.hierarchy_names()
        parents: list[Element] = []
        saw_root = False
        for name in names:
            found = self.covering_element(name, leaf.start, leaf.end)
            if found.is_root:
                if not saw_root:
                    saw_root = True
                    parents.append(found)
            else:
                parents.append(found)
        return parents

    # -- element registry & traversal -----------------------------------------------

    def top_level(self, hierarchy: str) -> tuple[Element, ...]:
        """Top-level elements of one hierarchy (children of root there)."""
        self.hierarchy(hierarchy)
        return tuple(self._h_top[hierarchy])

    def merged_top_level(self) -> list[Element]:
        """Top-level elements of all hierarchies, in document order."""
        iters = [iter(self._h_top[name]) for name in self._hierarchies]
        rank = {name: i for i, name in enumerate(self._hierarchies)}

        def key(element: Element) -> tuple[int, int, int, int]:
            return (
                element.start,
                0 if element.is_empty else 1,
                -element.end,
                rank[element.hierarchy],
            )

        return list(heap_merge(*iters, key=key))

    def elements(
        self, hierarchy: str | None = None, tag: str | None = None
    ) -> Iterator[Element]:
        """Iterate elements in document order.

        Document order is the canonical interleaving ``(start,
        zero-width-first, -end, hierarchy rank)``; within one hierarchy it
        coincides with XML document order (preorder).
        """
        if hierarchy is not None:
            self.hierarchy(hierarchy)
            names = (hierarchy,)
        else:
            names = self.hierarchy_names()

        def preorder(name: str) -> Iterator[Element]:
            stack: list[Element] = list(reversed(self._h_top[name]))
            while stack:
                node = stack.pop()
                yield node
                stack.extend(reversed(node._children))

        rank = {name: i for i, name in enumerate(self._hierarchies)}

        def key(element: Element) -> tuple[int, int, int, int]:
            return (
                element.start,
                0 if element.is_empty else 1,
                -element.end,
                rank[element.hierarchy],
            )

        stream: Iterator[Element] = heap_merge(
            *(preorder(name) for name in names), key=key
        )
        if tag is None:
            return stream
        return (element for element in stream if element.tag == tag)

    def ordered_elements(self) -> list[Element]:
        """All elements in canonical document order, cached per version.

        Canonical means sorted by :func:`repro.core.navigation.order_key`
        — the total order the query engine sorts node-sets by.  (The raw
        :meth:`elements` merge can locally disagree with that key when a
        zero-width element is anchored at the start of its own ancestor;
        sorting here pins one order so the descendant axis, the
        structural summary's candidate lists, and incremental index
        maintenance all agree positionally.)

        The query engine's descendant axis runs off this list; the cache
        invalidates automatically on any mutation (version bump).
        """
        if self._ordered_cache_version != self._version:
            from .navigation import order_key

            self._ordered_cache = sorted(self.elements(), key=order_key)
            self._ordered_cache_version = self._version
        return self._ordered_cache

    def element_count(self, hierarchy: str | None = None) -> int:
        """Number of elements, overall or for one hierarchy."""
        if hierarchy is not None:
            return len(self._h_all[hierarchy])
        return sum(len(elements) for elements in self._h_all.values())

    def child_nodes_of(self, element: Element) -> list[Node]:
        """Element children interleaved with the leaves tiling the gaps."""
        if element.is_root:
            children: Sequence[Element] = self.merged_top_level()
            lo, hi = 0, self.length
        else:
            children = element._children
            lo, hi = element.start, element.end
        out: list[Node] = []
        pos = lo
        for child in children:
            if child.start > pos:
                out.extend(self.leaves_in(Span(pos, child.start)))
            out.append(child)
            pos = max(pos, child.end)
        if hi > pos:
            out.extend(self.leaves_in(Span(pos, hi)))
        return out

    # -- span-based cross-hierarchy queries -------------------------------------------

    def _index(self, hierarchy: str) -> StaticIntervalIndex[Element]:
        index = self._h_index.get(hierarchy)
        if index is None:
            solid = [e for e in self._h_all[hierarchy] if not e.is_empty]
            index = StaticIntervalIndex(solid)
            self._h_index[hierarchy] = index
        return index

    def _dirty(self, hierarchy: str, change: ChangeRecord | None = None) -> None:
        self._h_index[hierarchy] = None
        self.touch(change)

    def _stab_chain(self, hierarchy: str, offset: int) -> list[Element]:
        """Solid elements of ``hierarchy`` containing position ``offset``,
        outermost first.

        Within one hierarchy spans properly nest, so the containing set
        is a root-to-innermost chain found by bisect descent over child
        lists — much cheaper than a general interval query.
        """
        out: list[Element] = []
        children: Sequence[Element] = self._h_top[hierarchy]
        while children:
            j = bisect_right(children, offset, key=lambda c: c._start) - 1
            while j >= 0 and children[j].is_empty:
                j -= 1
            if j < 0:
                break
            candidate = children[j]
            if candidate._end <= offset:
                break
            out.append(candidate)
            children = candidate._children
        return out

    def covering_element(self, hierarchy: str, start: int, end: int) -> Element:
        """Innermost element of ``hierarchy`` covering ``[start, end)``.

        Returns the shared root when no element covers the span.
        """
        self.hierarchy(hierarchy)
        chain = self._stab_chain(hierarchy, start)
        for candidate in reversed(chain):
            if candidate._end >= end:
                return candidate
        return self._root

    def overlapping_elements(
        self, element: Element, hierarchy: str | None = None
    ) -> list[Element]:
        """Elements properly overlapping ``element`` (always other
        hierarchies: within one hierarchy overlap cannot exist)."""
        if element.is_empty or element.is_root:
            return []
        names = (hierarchy,) if hierarchy else self.hierarchy_names()
        start, end = element.start, element.end
        out: list[Element] = []
        for name in names:
            if name == element.hierarchy:
                continue
            # An overlapping element must straddle one of our boundaries,
            # so two containment-chain stabs see every candidate without
            # visiting the (possibly many) contained elements.
            for other in self._stab_chain(name, start):
                if other._start < start and other._end < end:
                    out.append(other)
            for other in self._stab_chain(name, end - 1):
                if start < other._start and end < other._end:
                    out.append(other)
        return out

    def containing_elements(
        self, element: Element, hierarchy: str | None = None
    ) -> list[Element]:
        """Elements of *other* hierarchies whose span contains ``element``'s."""
        if element.is_root:
            return []
        names = (hierarchy,) if hierarchy else self.hierarchy_names()
        start, end = element.start, element.end
        out: list[Element] = []
        for name in names:
            if name == element.hierarchy:
                continue
            if start == end:
                # Zero-width anchors: containment is boundary-inclusive
                # (an element ending exactly at the anchor contains it).
                merged: dict[int, Element] = {}
                if start > 0:
                    for other in self._stab_chain(name, start - 1):
                        if other._end >= end:
                            merged[id(other)] = other
                if start < self.length:
                    for other in self._stab_chain(name, start):
                        merged[id(other)] = other
                out.extend(merged.values())
                continue
            out.extend(
                other
                for other in self._stab_chain(name, start)
                if other._end >= end
            )
        return out

    def contained_elements(
        self, element: Element, hierarchy: str | None = None
    ) -> list[Element]:
        """Elements of *other* hierarchies contained in ``element``'s span."""
        if element.is_empty:
            return []
        if element.is_root:
            names = (hierarchy,) if hierarchy else self.hierarchy_names()
            out: list[Element] = []
            for name in names:
                out.extend(self._index(name).all_items())
            return out
        names = (hierarchy,) if hierarchy else self.hierarchy_names()
        out = []
        for name in names:
            if name == element.hierarchy:
                continue
            out.extend(self._index(name).contained_in(element.start, element.end))
        return out

    def coextensive_elements(
        self, element: Element, hierarchy: str | None = None
    ) -> list[Element]:
        """Elements of other hierarchies covering exactly the same text."""
        if element.is_root or element.is_empty:
            return []
        return [
            other
            for other in self.containing_elements(element, hierarchy)
            if other.span == element.span
        ]

    # -- dynamic mutation (the editing primitives) ---------------------------------------

    def _find_parent(self, hierarchy: str, start: int, end: int) -> Element:
        """Deepest element of ``hierarchy`` containing ``[start, end)``.

        Descends through child lists (no index needed, edit-friendly).
        For zero-width targets containment is half-open: ``c.start <= a <
        c.end``.
        """
        parent: Element = self._root
        children: Sequence[Element] = self._h_top[hierarchy]
        target_empty = start == end
        while True:
            found = None
            for child in children:
                if child.is_empty:
                    continue
                if child.start > start:
                    break
                if target_empty:
                    if child.start <= start < child.end:
                        found = child
                elif child.start <= start and end <= child.end:
                    found = child
            if found is None:
                return parent
            parent = found
            children = found._children

    def insert_element(
        self,
        hierarchy: str,
        tag: str,
        start: int,
        end: int,
        attributes: Mapping[str, str] | None = None,
    ) -> Element:
        """Insert markup ``<tag>`` over ``[start, end)`` into ``hierarchy``.

        Existing elements of the same hierarchy fully inside the range are
        adopted as children; a partial overlap with same-hierarchy markup
        raises :class:`MarkupConflictError`.  Overlap with *other*
        hierarchies is exactly what the data model exists for and is
        always allowed.
        """
        self.hierarchy(hierarchy)
        if start < 0 or end > self.length or start > end:
            raise SpanError(
                f"invalid element span [{start},{end}) for document of "
                f"length {self.length}"
            )
        parent = self._find_parent(hierarchy, start, end)
        siblings = (
            self._h_top[hierarchy] if parent.is_root else parent._children
        )
        span = Span(start, end)
        for sibling in siblings:
            if not sibling.is_empty and sibling.span.overlaps(span):
                raise MarkupConflictError(
                    f"<{tag}> [{start},{end}) overlaps <{sibling.tag}> "
                    f"[{sibling.start},{sibling.end}) in hierarchy "
                    f"{hierarchy!r}",
                    hierarchy=hierarchy, tag=tag, start=start, end=end,
                )
        self._spans.add_span(span)
        element = Element(
            self, hierarchy, tag, start, end, attributes, self._next_ordinal()
        )
        if start < end:
            adopted = [
                sibling
                for sibling in siblings
                if (start <= sibling.start < end and sibling.is_empty)
                or (not sibling.is_empty
                    and start <= sibling.start and sibling.end <= end)
            ]
        else:
            adopted = []
        for child in adopted:
            siblings.remove(child)
            child._parent = element
        element._children = sorted(adopted, key=_sibling_key)
        element._parent = None if parent.is_root else parent
        insort(siblings, element, key=_sibling_key)
        self._h_all[hierarchy].append(element)
        self._hierarchies[hierarchy].observe_tag(tag)
        change = None
        if self.journal_tracking:
            change = InsertMarkup(
                hierarchy=hierarchy, tag=tag, start=start, end=end,
                attributes=tuple(sorted(element.attributes.items())),
                ordinal=element.ordinal, element=element,
                parent=None if parent.is_root else parent,
                parent_path=self._label_path(parent),
                repathed=tuple(
                    node
                    for child in adopted
                    for node in (child, *child.descendants())
                ),
            )
        self._dirty(hierarchy, change)
        return element

    def insert_empty_element(
        self,
        hierarchy: str,
        tag: str,
        offset: int,
        attributes: Mapping[str, str] | None = None,
    ) -> Element:
        """Insert a zero-width (milestone-like) element anchored at ``offset``."""
        if offset < 0 or offset > self.length:
            raise SpanError(f"anchor {offset} outside document")
        self._spans.add_boundary(offset)
        return self.insert_element(hierarchy, tag, offset, offset, attributes)

    def remove_element(self, element: Element) -> None:
        """Remove one element; its children are spliced up to its parent.

        Leaf boundaries are never removed, so the leaf table stays a
        refinement of the minimal partition (harmless and cheap).
        """
        if element.is_root:
            raise MarkupConflictError("the shared root cannot be removed")
        hierarchy = element.hierarchy
        parent = element.parent
        siblings = (
            self._h_top[hierarchy] if parent.is_root else parent._children
        )
        try:
            position = siblings.index(element)
        except ValueError:
            raise MarkupConflictError(
                f"element {element!r} is not attached to this document"
            ) from None
        change = None
        if self.journal_tracking:
            change = RemoveMarkup(
                hierarchy=hierarchy, tag=element.tag,
                start=element.start, end=element.end,
                attributes=tuple(sorted(element.attributes.items())),
                ordinal=element.ordinal, element=element,
                parent=None if parent.is_root else parent,
                parent_path=self._label_path(parent),
                repathed=tuple(
                    node
                    for child in element._children
                    for node in (child, *child.descendants())
                ),
            )
        replacement = element._children
        for child in replacement:
            child._parent = None if parent.is_root else parent
        siblings[position : position + 1] = replacement
        element._children = []
        element._parent = None
        self._h_all[hierarchy].remove(element)
        self._dirty(hierarchy, change)

    def set_attribute(self, element: Element, name: str, value: str) -> None:
        """Set one attribute on ``element`` (tracked: emits a record).

        Attribute values are always strings, so ``old is None`` in the
        record encodes prior absence unambiguously.
        """
        old = element.attributes.get(name)
        element.attributes[name] = value
        self.touch(SetAttribute(element=element, name=name, value=value,
                                old=old)
                   if self.journal_tracking else None)

    def remove_attribute(self, element: Element, name: str) -> None:
        """Delete one attribute from ``element`` (tracked; missing names
        are a no-op mutation that still emits its record)."""
        old = element.attributes.pop(name, None)
        self.touch(SetAttribute(element=element, name=name, value=None,
                                old=old)
                   if self.journal_tracking else None)

    # -- integrity & analytics --------------------------------------------------------------

    def check_invariants(self) -> list[str]:
        """Verify structural invariants; returns a list of violations.

        An empty list means the document is internally consistent.  Used
        heavily by tests and by the editing layer after mutations.
        """
        problems: list[str] = []
        boundaries = set(self._spans.boundaries)
        seen_ordinals: set[int] = set()
        for name in self._hierarchies:
            stack: list[tuple[Element | None, Sequence[Element]]] = [
                (None, self._h_top[name])
            ]
            while stack:
                parent, children = stack.pop()
                keys = [_sibling_key(child) for child in children]
                if keys != sorted(keys):
                    problems.append(
                        f"{name}: children of "
                        f"{parent.tag if parent else 'root'} not sorted"
                    )
                previous: Element | None = None
                for child in children:
                    if child.hierarchy != name:
                        problems.append(
                            f"{name}: foreign element {child!r} in tree"
                        )
                    if child.ordinal in seen_ordinals:
                        problems.append(f"duplicate ordinal {child.ordinal}")
                    seen_ordinals.add(child.ordinal)
                    if child.start not in boundaries or child.end not in boundaries:
                        problems.append(
                            f"{name}: {child!r} boundaries missing from table"
                        )
                    if parent is not None:
                        if child._parent is not parent:
                            problems.append(
                                f"{name}: bad parent pointer on {child!r}"
                            )
                        if not parent.span.contains(child.span):
                            problems.append(
                                f"{name}: {child!r} escapes parent {parent!r}"
                            )
                    elif child._parent is not None:
                        problems.append(
                            f"{name}: top-level {child!r} has a parent pointer"
                        )
                    if (
                        previous is not None
                        and not previous.is_empty
                        and not child.is_empty
                        and child.start < previous.end
                    ):
                        problems.append(
                            f"{name}: siblings {previous!r} / {child!r} overlap"
                        )
                    if not child.is_empty:
                        previous = child
                    stack.append((child, child._children))
        return problems

    def stats(self) -> dict[str, object]:
        """Node/edge census of the GODDAG (the Figure 2 view).

        Edges counted: element→element (per tree) plus the leaf edges from
        each leaf's innermost parent per hierarchy (deduplicating root).
        """
        element_edges = 0
        per_hierarchy: dict[str, int] = {}
        for name in self._hierarchies:
            count = len(self._h_all[name])
            per_hierarchy[name] = count
            element_edges += count  # every element has exactly one parent edge
        leaf_edges = 0
        for leaf in self.leaves():
            leaf_edges += len(self.leaf_parents(leaf))
        return {
            "hierarchies": len(self._hierarchies),
            "elements": sum(per_hierarchy.values()),
            "elements_per_hierarchy": per_hierarchy,
            "leaves": len(self._spans),
            "element_edges": element_edges,
            "leaf_edges": leaf_edges,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GoddagDocument(length={self.length}, "
            f"hierarchies={list(self._hierarchies)}, "
            f"elements={self.element_count()}, leaves={len(self._spans)})"
        )


class _OpenElement:
    """Builder-internal record of an element whose end tag is pending."""

    __slots__ = ("tag", "start", "end", "attributes", "children", "seq",
                 "ordinal")

    def __init__(self, tag: str, start: int, attributes: dict[str, str],
                 seq: int, ordinal: int | None = None):
        self.tag = tag
        self.start = start
        self.end = -1
        self.attributes = attributes
        self.children: list[_OpenElement] = []
        self.seq = seq
        self.ordinal = ordinal


def _walk_open_elements(records: Iterable["_OpenElement"]) -> Iterator["_OpenElement"]:
    """All builder records of some trees, preorder (identity pre-scan)."""
    stack = list(records)
    while stack:
        record = stack.pop()
        yield record
        stack.extend(record.children)


class GoddagBuilder:
    """Constructs a :class:`GoddagDocument` from events or annotations.

    Two input styles, freely mixable across hierarchies:

    * **event style** (used by parsers): :meth:`start_element`,
      :meth:`end_element`, :meth:`empty_element` with character offsets;
      source nesting is preserved exactly;
    * **annotation style** (used by standoff import, generators, tests):
      :meth:`add_annotation` with ``(tag, start, end)``; nesting is derived
      from spans using the placement conventions of this module.

    Every input method accepts an optional explicit ``ordinal`` — the
    persistent-identity path used by :func:`repro.storage.schema.decode_document`
    so that reconstruction preserves the birth ordinals the elements were
    stored under.  Elements without one draw fresh ordinals *above* the
    largest explicit ordinal, so loaded identity and new identity never
    collide (``_next_ordinal`` resumes past the loaded maximum).
    """

    def __init__(self, text: str, root_tag: str = "r") -> None:
        self._text = text
        self._root_tag = root_tag
        self._hierarchy_names: list[str] = []
        self._hierarchy_dtds: dict[str, object] = {}
        # Event style state, per hierarchy.
        self._stacks: dict[str, list[_OpenElement]] = {}
        self._toplevel: dict[str, list[_OpenElement]] = {}
        # Annotation style state, per hierarchy.
        self._annotations: dict[str, list[tuple[str, int, int, dict[str, str], int]]] = {}
        self._seq = 0

    @property
    def text(self) -> str:
        return self._text

    def add_hierarchy(self, name: str, dtd=None) -> None:
        """Declare a hierarchy (order of declaration fixes rank)."""
        if name in self._stacks:
            raise HierarchyError(f"duplicate hierarchy {name!r}")
        self._hierarchy_names.append(name)
        self._hierarchy_dtds[name] = dtd
        self._stacks[name] = []
        self._toplevel[name] = []
        self._annotations[name] = []

    def _check_hierarchy(self, name: str) -> None:
        if name not in self._stacks:
            raise HierarchyError(f"unknown hierarchy {name!r}")

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    @staticmethod
    def _check_ordinal(ordinal: int | None) -> int | None:
        if ordinal is not None and ordinal < 1:
            raise MarkupConflictError(
                f"explicit element ordinal must be >= 1 (0 is the shared "
                f"root), got {ordinal}"
            )
        return ordinal

    # -- event style --------------------------------------------------------------

    def start_element(
        self, hierarchy: str, tag: str, offset: int,
        attributes: Mapping[str, str] | None = None,
        ordinal: int | None = None,
    ) -> None:
        """Open ``<tag>`` at character position ``offset``.

        ``ordinal`` fixes the element's persistent identity explicitly
        (storage reconstruction); omitted, a fresh one is assigned.
        """
        self._check_hierarchy(hierarchy)
        record = _OpenElement(tag, offset, dict(attributes or {}),
                              self._next_seq(), self._check_ordinal(ordinal))
        stack = self._stacks[hierarchy]
        if stack:
            stack[-1].children.append(record)
        else:
            self._toplevel[hierarchy].append(record)
        stack.append(record)

    def end_element(self, hierarchy: str, tag: str, offset: int) -> None:
        """Close the innermost open element, which must be ``tag``."""
        self._check_hierarchy(hierarchy)
        stack = self._stacks[hierarchy]
        if not stack:
            raise MarkupConflictError(
                f"end tag </{tag}> with no open element in {hierarchy!r}",
                hierarchy=hierarchy, tag=tag,
            )
        record = stack.pop()
        if record.tag != tag:
            raise MarkupConflictError(
                f"end tag </{tag}> does not match open <{record.tag}> "
                f"in {hierarchy!r}",
                hierarchy=hierarchy, tag=tag,
            )
        if offset < record.start:
            raise SpanError(
                f"element <{tag}> ends at {offset} before it starts "
                f"at {record.start}"
            )
        record.end = offset

    def empty_element(
        self, hierarchy: str, tag: str, offset: int,
        attributes: Mapping[str, str] | None = None,
        ordinal: int | None = None,
    ) -> None:
        """Record a zero-width element at ``offset`` (source nesting kept)."""
        self._check_hierarchy(hierarchy)
        record = _OpenElement(tag, offset, dict(attributes or {}),
                              self._next_seq(), self._check_ordinal(ordinal))
        record.end = offset
        stack = self._stacks[hierarchy]
        if stack:
            stack[-1].children.append(record)
        else:
            self._toplevel[hierarchy].append(record)

    # -- annotation style ------------------------------------------------------------

    def add_annotation(
        self, hierarchy: str, tag: str, start: int, end: int,
        attributes: Mapping[str, str] | None = None,
        ordinal: int | None = None,
    ) -> None:
        """Record markup by offsets; nesting is derived at :meth:`build`."""
        self._check_hierarchy(hierarchy)
        if start < 0 or end > len(self._text) or start > end:
            raise SpanError(
                f"annotation [{start},{end}) outside document of length "
                f"{len(self._text)}"
            )
        self._annotations[hierarchy].append(
            (tag, start, end, dict(attributes or {}), self._next_seq(),
             self._check_ordinal(ordinal))
        )

    # -- construction ------------------------------------------------------------------

    def _nest_annotations(self, hierarchy: str) -> None:
        """Convert the annotation bag into nested ``_OpenElement`` records."""
        annotations = self._annotations[hierarchy]
        if not annotations:
            return
        annotations.sort(key=lambda a: (a[1], -a[2], a[4]))
        top = self._toplevel[hierarchy]
        stack: list[_OpenElement] = []
        for tag, start, end, attributes, seq, ordinal in annotations:
            record = _OpenElement(tag, start, attributes, seq, ordinal)
            record.end = end
            while stack:
                open_span = Span(stack[-1].start, stack[-1].end)
                target = Span(start, end)
                if start == end:
                    contains = stack[-1].start <= start < stack[-1].end
                else:
                    contains = open_span.contains(target)
                if contains:
                    break
                if open_span.overlaps(target):
                    raise MarkupConflictError(
                        f"<{tag}> [{start},{end}) overlaps "
                        f"<{stack[-1].tag}> [{stack[-1].start},{stack[-1].end}) "
                        f"in hierarchy {hierarchy!r}",
                        hierarchy=hierarchy, tag=tag, start=start, end=end,
                    )
                stack.pop()
            if stack:
                stack[-1].children.append(record)
            else:
                top.append(record)
            if start < end:
                stack.append(record)
        self._annotations[hierarchy] = []

    def build(self, check: bool = True) -> GoddagDocument:
        """Materialize the document; ``check`` runs the invariant suite."""
        for name in self._hierarchy_names:
            if self._stacks[name]:
                open_tags = ", ".join(r.tag for r in self._stacks[name])
                raise MarkupConflictError(
                    f"unclosed elements in hierarchy {name!r}: {open_tags}"
                )
            self._nest_annotations(name)

        document = GoddagDocument(self._text, self._root_tag)
        # The identity contract: explicit ordinals (reconstruction) are
        # preserved verbatim, and the fresh-ordinal counter starts past
        # their maximum so mixed input — and every element created by a
        # later editing session — can never collide with a loaded id.
        document._ordinal = max(
            (record.ordinal
             for name in self._hierarchy_names
             for record in _walk_open_elements(self._toplevel[name])
             if record.ordinal is not None),
            default=0,
        )
        boundaries: set[int] = set()
        for name in self._hierarchy_names:
            hierarchy = document.add_hierarchy(name, dtd=self._hierarchy_dtds[name])
            top_elements: list[Element] = []
            for record in sorted(
                self._toplevel[name],
                key=lambda r: (r.start, 0 if r.start == r.end else 1, -r.end, r.seq),
            ):
                top_elements.append(
                    self._materialize(document, hierarchy, record, None, boundaries)
                )
            document._h_top[name] = top_elements
        document.spans.add_boundaries(boundaries)
        document.touch()
        if check:
            problems = document.check_invariants()
            if problems:
                raise MarkupConflictError(
                    "built document violates invariants: " + "; ".join(problems)
                )
        return document

    def _materialize(
        self,
        document: GoddagDocument,
        hierarchy: Hierarchy,
        record: _OpenElement,
        parent: Element | None,
        boundaries: set[int],
    ) -> Element:
        element = Element(
            document,
            hierarchy.name,
            record.tag,
            record.start,
            record.end,
            record.attributes,
            record.ordinal if record.ordinal is not None
            else document._next_ordinal(),
        )
        element._parent = parent
        boundaries.add(record.start)
        boundaries.add(record.end)
        hierarchy.observe_tag(record.tag)
        document._h_all[hierarchy.name].append(element)
        children = sorted(
            record.children,
            key=lambda r: (r.start, 0 if r.start == r.end else 1, -r.end, r.seq),
        )
        element._children = [
            self._materialize(document, hierarchy, child, element, boundaries)
            for child in children
        ]
        return element
