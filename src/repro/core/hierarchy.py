"""Concurrent markup hierarchies and the tag-conflict machinery.

The paper's central schema notion: a *concurrent markup hierarchy* (CMH)
groups the element types of a markup language into sets that never need
to overlap internally — each set gets its own DTD and forms one tree of
the GODDAG.  This module provides:

* :class:`Hierarchy` — one named hierarchy (its rank fixes document-order
  tie-breaking; it may carry a DTD for validation);
* :class:`ConcurrentSchema` — an ordered collection of hierarchies with a
  tag → hierarchy assignment;
* the **conflict graph** over tags observed in an annotation soup, and a
  greedy-coloring **auto-partition** that derives a small CMH from data —
  used when importing standoff annotations that declare no schema.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import HierarchyError


class Hierarchy:
    """One markup hierarchy: a named, ranked set of element types."""

    __slots__ = ("name", "rank", "dtd", "_tags")

    def __init__(self, name: str, rank: int = 0, dtd=None,
                 tags: Iterable[str] = ()) -> None:
        self.name = name
        self.rank = rank
        #: Optional :class:`repro.dtd.DTD` used by validation/prevalidation.
        self.dtd = dtd
        self._tags: set[str] = set(tags)

    @property
    def tags(self) -> frozenset[str]:
        """Element types declared or observed in this hierarchy."""
        return frozenset(self._tags)

    def observe_tag(self, tag: str) -> None:
        """Record that ``tag`` occurs in this hierarchy."""
        self._tags.add(tag)

    def declares(self, tag: str) -> bool:
        return tag in self._tags

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hierarchy({self.name!r}, rank={self.rank}, tags={sorted(self._tags)})"


class ConcurrentSchema:
    """An ordered collection of hierarchies with unique tag ownership.

    A tag may belong to at most one hierarchy of a schema: the schema is
    precisely the function that routes raw markup to the tree that can
    hold it without internal overlap.
    """

    def __init__(self) -> None:
        self._hierarchies: dict[str, Hierarchy] = {}
        self._tag_owner: dict[str, str] = {}

    def add_hierarchy(self, name: str, tags: Iterable[str] = (), dtd=None) -> Hierarchy:
        """Declare a hierarchy owning ``tags``; order fixes rank."""
        if name in self._hierarchies:
            raise HierarchyError(f"duplicate hierarchy {name!r}")
        hierarchy = Hierarchy(name, rank=len(self._hierarchies), dtd=dtd, tags=tags)
        for tag in hierarchy.tags:
            self._claim(tag, name)
        self._hierarchies[name] = hierarchy
        return hierarchy

    def _claim(self, tag: str, name: str) -> None:
        owner = self._tag_owner.get(tag)
        if owner is not None and owner != name:
            raise HierarchyError(
                f"tag {tag!r} claimed by both {owner!r} and {name!r}"
            )
        self._tag_owner[tag] = name

    def assign_tag(self, tag: str, hierarchy: str) -> None:
        """Route ``tag`` to ``hierarchy`` (must not be claimed elsewhere)."""
        if hierarchy not in self._hierarchies:
            raise HierarchyError(f"unknown hierarchy {hierarchy!r}")
        self._claim(tag, hierarchy)
        self._hierarchies[hierarchy].observe_tag(tag)

    def hierarchy(self, name: str) -> Hierarchy:
        try:
            return self._hierarchies[name]
        except KeyError:
            raise HierarchyError(f"unknown hierarchy {name!r}") from None

    def hierarchy_names(self) -> tuple[str, ...]:
        return tuple(self._hierarchies)

    def owner_of(self, tag: str) -> str | None:
        """The hierarchy owning ``tag``, or None if unassigned."""
        return self._tag_owner.get(tag)

    def __iter__(self) -> Iterator[Hierarchy]:
        return iter(self._hierarchies.values())

    def __len__(self) -> int:
        return len(self._hierarchies)

    def __contains__(self, name: str) -> bool:
        return name in self._hierarchies

    @classmethod
    def from_annotations(
        cls,
        annotations: Iterable[tuple[str, int, int]],
        name_format: str = "h{index}",
    ) -> "ConcurrentSchema":
        """Derive a small schema from raw ``(tag, start, end)`` annotations.

        Builds the tag-conflict graph and greedy-colors it; each color
        class becomes a hierarchy.  The number of hierarchies is minimal
        for chordal conflict graphs and near-minimal in practice — the
        point is not optimality but that the result is guaranteed
        overlap-free within each hierarchy.
        """
        classes = partition_tags(annotations)
        schema = cls()
        for index, tags in enumerate(classes):
            schema.add_hierarchy(name_format.format(index=index), tags=sorted(tags))
        return schema

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConcurrentSchema({list(self._hierarchies)})"


def conflict_graph(
    annotations: Iterable[tuple[str, int, int]],
) -> dict[str, set[str]]:
    """The tag-conflict graph of an annotation soup.

    Tags ``a`` and ``b`` conflict iff some instance of ``a`` properly
    overlaps some instance of ``b`` — i.e. they cannot coexist in one
    well-formed hierarchy.  Self-conflicts (a tag overlapping itself) are
    recorded as a self-loop, which no coloring can fix; callers that see
    one must split instances instead (the library reports it loudly).

    Sweep-line over start offsets; worst case ``O(n^2)`` when everything
    is mutually nested (no edges result), which is fine at the scale of
    editing sessions and import jobs this serves.
    """
    items = sorted(
        ((start, end, tag) for (tag, start, end) in annotations if start < end),
    )
    graph: dict[str, set[str]] = {}
    for tag in {tag for (_, _, tag) in items}:
        graph[tag] = set()
    active: list[tuple[int, int, str]] = []  # (end, start, tag)
    for start, end, tag in items:
        live: list[tuple[int, int, str]] = []
        for other_end, other_start, other_tag in active:
            if other_end <= start:
                continue
            live.append((other_end, other_start, other_tag))
            # Proper overlap test: intervals intersect, neither contains.
            contains = other_start <= start and end <= other_end
            contained = start <= other_start and other_end <= end
            if not contains and not contained:
                graph[tag].add(other_tag)
                graph[other_tag].add(tag)
        live.append((end, start, tag))
        active = live
    return graph


def greedy_color(graph: Mapping[str, set[str]]) -> dict[str, int]:
    """Greedy largest-degree-first coloring; deterministic.

    A self-loop in the graph is uncolorable and raises
    :class:`HierarchyError` (it means one tag overlaps itself and must be
    split across two hierarchies by *instance*, not by tag).
    """
    for tag, neighbours in graph.items():
        if tag in neighbours:
            raise HierarchyError(
                f"tag {tag!r} overlaps itself; instance-level split required"
            )
    order = sorted(graph, key=lambda tag: (-len(graph[tag]), tag))
    colors: dict[str, int] = {}
    for tag in order:
        used = {colors[n] for n in graph[tag] if n in colors}
        color = 0
        while color in used:
            color += 1
        colors[tag] = color
    return colors


def partition_tags(
    annotations: Iterable[tuple[str, int, int]],
) -> list[set[str]]:
    """Partition the tags of an annotation soup into overlap-free classes.

    Returns color classes ordered by color index; tags never observed to
    conflict with anything end up in class 0.
    """
    graph = conflict_graph(annotations)
    colors = greedy_color(graph)
    if not colors:
        return []
    classes: list[set[str]] = [set() for _ in range(max(colors.values()) + 1)]
    for tag, color in colors.items():
        classes[color].add(tag)
    return classes


def minimal_hierarchies(
    annotations: Sequence[tuple[str, int, int]],
) -> int:
    """Number of hierarchies the greedy auto-partition produces."""
    return len(partition_tags(annotations))
