"""Typed change records — the delta protocol of the editing hot path.

Every tracked mutation of a :class:`~repro.core.goddag.GoddagDocument`
emits exactly one record describing what changed, into the document's
bounded delta journal (:meth:`GoddagDocument.changes_since`).  Consumers
— most importantly :class:`~repro.index.manager.IndexManager` — replay
the records to update derived structures *in place* instead of
rebuilding them from scratch after every edit.

Three record types cover the whole mutation surface:

* :class:`InsertMarkup` — an element entered a hierarchy (milestone
  insertion is the zero-width case, :attr:`InsertMarkup.is_milestone`);
* :class:`RemoveMarkup` — an element left a hierarchy (children spliced
  up to its parent);
* :class:`SetAttribute` — one attribute set or deleted (``value is
  None`` encodes deletion, ``old is None`` encodes prior absence).

Records are closed under inversion: ``record.inverse()`` describes the
mutation that undoes ``record``, which is exactly what the editing
layer's undo/redo emits when it reverts or replays a command.  Structural
records additionally carry the *re-pathing context* an incremental
structural summary needs: the label path of the parent the element was
attached under (plus the parent element itself, for row-level storage
re-ranking), and the elements whose root-to-self label path changed
because the insertion adopted them (or the removal spliced them up).

The records hold live :class:`~repro.core.node.Element` references on
purpose — the journal is an in-memory, same-process protocol; persisted
deltas travel as the plain-value forms produced by the index manager.

Every record names its element's birth ``ordinal`` — the persistent
``elem_id`` both storage backends key element rows by — which is what
lets :class:`ElementRowCoalescer` fold a whole journal window into the
minimal set of row-level storage writes (:class:`UpdateElementRow`): N
edits to one element collapse to one upsert, an insert undone by its
remove nets out entirely, and an attribute-only session persists in
O(1) rows instead of a full table rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .node import Element


@dataclass(frozen=True)
class InsertMarkup:
    """An element was inserted into ``hierarchy`` over ``[start, end)``."""

    hierarchy: str
    tag: str
    start: int
    end: int
    attributes: tuple[tuple[str, str], ...]
    ordinal: int
    #: The inserted element itself (live reference, identity-stable).
    element: "Element" = field(repr=False)
    #: Label path of the parent it was attached under (root = ``()``).
    parent_path: tuple[str, ...] = ()
    #: Elements whose label path gained ``tag`` at ``len(parent_path)``
    #: because the insertion adopted their subtree.
    repathed: tuple["Element", ...] = field(default=(), repr=False)
    #: The parent element it was attached under (``None`` = shared root)
    #: — the sibling list whose child ranks the insertion shifted.
    parent: "Element | None" = field(default=None, repr=False)

    @property
    def is_milestone(self) -> bool:
        """True for zero-width (milestone) insertions."""
        return self.start == self.end

    def signature(self) -> tuple:
        """The value identity of the mutation (element refs excluded)."""
        return ("insert", self.hierarchy, self.tag, self.start, self.end)

    def inverse(self) -> "RemoveMarkup":
        return RemoveMarkup(
            hierarchy=self.hierarchy, tag=self.tag,
            start=self.start, end=self.end,
            attributes=self.attributes, ordinal=self.ordinal,
            element=self.element, parent_path=self.parent_path,
            repathed=self.repathed, parent=self.parent,
        )


@dataclass(frozen=True)
class RemoveMarkup:
    """An element was removed; its children were spliced up."""

    hierarchy: str
    tag: str
    start: int
    end: int
    attributes: tuple[tuple[str, str], ...]
    ordinal: int
    #: The removed element (now detached from the document).
    element: "Element" = field(repr=False)
    #: Label path of the parent it was removed from (root = ``()``).
    parent_path: tuple[str, ...] = ()
    #: Elements whose label path lost ``tag`` at ``len(parent_path)``
    #: because the removal spliced their subtree up.
    repathed: tuple["Element", ...] = field(default=(), repr=False)
    #: The parent it was removed from (``None`` = shared root) — the
    #: sibling list the removal re-ranked (spliced children included).
    parent: "Element | None" = field(default=None, repr=False)

    @property
    def is_milestone(self) -> bool:
        return self.start == self.end

    def signature(self) -> tuple:
        return ("remove", self.hierarchy, self.tag, self.start, self.end)

    def inverse(self) -> "InsertMarkup":
        return InsertMarkup(
            hierarchy=self.hierarchy, tag=self.tag,
            start=self.start, end=self.end,
            attributes=self.attributes, ordinal=self.ordinal,
            element=self.element, parent_path=self.parent_path,
            repathed=self.repathed, parent=self.parent,
        )


@dataclass(frozen=True)
class SetAttribute:
    """One attribute changed: set (``value``), or deleted (``value is
    None``); ``old is None`` means the attribute did not exist before."""

    element: "Element" = field(repr=False)
    name: str = ""
    value: str | None = None
    old: str | None = None

    def signature(self) -> tuple:
        return ("attribute", self.name, self.old, self.value)

    def inverse(self) -> "SetAttribute":
        return SetAttribute(
            element=self.element, name=self.name,
            value=self.old, old=self.value,
        )


#: Everything a delta journal may hold.
ChangeRecord = Union[InsertMarkup, RemoveMarkup, SetAttribute]


@dataclass(frozen=True)
class UpdateElementRow:
    """One coalesced row-level storage write, keyed by persistent id.

    ``element`` is the live element whose row must be (re)written —
    the storage layer encodes its *current* state at save time — or
    ``None`` for a row deletion.  ``parent_id``/``child_rank`` are
    placement hints pre-computed by the coalescer's container
    enumeration (which knows both for free); left ``None``, the storage
    layer derives them from the element's sibling list.  Produced only
    by :class:`ElementRowCoalescer`; never enters the delta journal
    itself.
    """

    ordinal: int
    element: "Element | None" = field(default=None, repr=False)
    parent_id: int | None = None
    child_rank: int | None = None

    @property
    def is_delete(self) -> bool:
        return self.element is None


class ElementRowCoalescer:
    """Folds a journal window into the minimal element-row write set.

    Feed every :data:`ChangeRecord` of a window through :meth:`record`
    (in order), then ask :meth:`updates` for the coalesced
    :class:`UpdateElementRow` operations against the document's *final*
    state.  Guarantees:

    * N edits to one element collapse to one row write;
    * an element born and removed inside the window produces nothing;
    * every row whose ``parent_id`` or ``child_rank`` an insertion or
      removal shifted is re-written (the record's ``parent`` names the
      sibling list that re-ranked; the inserted element names the list
      of children it adopted);
    * row *contents* are read from the live elements at
      :meth:`updates` time, so intermediate states are never persisted.

    A record stream that is internally inconsistent (an insert re-using
    a deleted ordinal, an unknown record type) marks the coalescer
    :attr:`broken`; the storage layer then falls back to a full rewrite
    — the same contract as an untracked mutation.
    """

    __slots__ = ("_touched", "_containers", "_deleted", "_born", "broken",
                 "records_seen")

    def __init__(self) -> None:
        #: Journal records folded so far — the numerator of the fold
        #: ratio (records seen / row writes produced) reported by
        #: :meth:`updates` to the ``journal.coalesce.*`` metrics.
        self.records_seen = 0
        # ordinal -> live element whose own row content changed
        self._touched: dict[int, "Element"] = {}
        # container key -> parent element whose child list changed:
        # every current child re-ranks at save time.  Non-root parents
        # key by ordinal; the shared root keys *per hierarchy* (value
        # ``None``) so a top-level edit in one hierarchy never rewrites
        # the top-level rows of the others.
        self._containers: dict[object, "Element | None"] = {}
        # ordinals whose rows must be deleted
        self._deleted: set[int] = set()
        # ordinals born inside this window (their delete is a no-op)
        self._born: set[int] = set()
        self.broken = False

    def __len__(self) -> int:
        return len(self._touched) + len(self._containers) + len(self._deleted)

    def __bool__(self) -> bool:
        return len(self) > 0

    def _dirty_container(self, parent: "Element | None",
                         hierarchy: str) -> None:
        if parent is None:
            self._containers[("root", hierarchy)] = None
        else:
            self._containers[parent.ordinal] = parent

    def record(self, change: ChangeRecord) -> None:
        """Fold one journal record into the pending write set."""
        self.records_seen += 1
        if self.broken:
            return
        if isinstance(change, SetAttribute):
            element = change.element
            if not element.is_root:
                # Root attributes live on the document row, which every
                # save rewrites anyway — element rows only here.
                self._touched[element.ordinal] = element
            return
        if isinstance(change, InsertMarkup):
            element = change.element
            if element.ordinal in self._deleted:
                # Ordinals are birth stamps and never reused; a replayed
                # insert of a deleted ordinal means the records did not
                # come from one document's journal.
                self.broken = True
                return
            self._touched[element.ordinal] = element
            self._born.add(element.ordinal)
            self._dirty_container(change.parent, change.hierarchy)
            # Adopted children re-parent (and re-rank) under the new
            # element; its child list is the second dirtied container.
            self._containers[element.ordinal] = element
            return
        if isinstance(change, RemoveMarkup):
            element = change.element
            self._touched.pop(element.ordinal, None)
            self._containers.pop(element.ordinal, None)
            if element.ordinal in self._born:
                self._born.discard(element.ordinal)
            else:
                self._deleted.add(element.ordinal)
            self._dirty_container(change.parent, change.hierarchy)
            return
        self.broken = True  # unknown record type: cannot coalesce

    def updates(self, document) -> list[UpdateElementRow]:
        """The coalesced write set against ``document``'s final state.

        Returns row deletions first, then one upsert per distinct
        surviving element (deduplicated across all dirty containers).
        Raises :class:`ValueError` when :attr:`broken` — callers must
        check first and fall back to a full rewrite.
        """
        if self.broken:
            raise ValueError("broken coalescer cannot produce row updates")
        from ..obs.metrics import metrics

        ops = [UpdateElementRow(ordinal=ordinal)
               for ordinal in sorted(self._deleted)]
        upserts: dict[int, UpdateElementRow] = {
            ordinal: UpdateElementRow(ordinal=ordinal, element=element)
            for ordinal, element in self._touched.items()
        }
        # Container enumeration overwrites plain upserts with hinted
        # ones: each child's (parent_id, child_rank) falls out of one
        # O(children) pass, so a re-ranked sibling list never pays a
        # per-child index() scan downstream.
        for key, container in self._containers.items():
            if container is None:
                hierarchy = key[1]  # ("root", hierarchy) key
                children = document.top_level(hierarchy)
                parent_id = 0
            elif key not in self._deleted:
                children = container.element_children
                parent_id = container.ordinal
            else:
                continue
            for rank, child in enumerate(children):
                upserts[child.ordinal] = UpdateElementRow(
                    ordinal=child.ordinal, element=child,
                    parent_id=parent_id, child_rank=rank,
                )
        ops.extend(op for _, op in sorted(upserts.items()))
        if metrics.enabled:
            metrics.incr("journal.coalesce.records", self.records_seen)
            metrics.incr("journal.coalesce.row_writes", len(ops))
            # Fold ratio: journal records absorbed per row write emitted
            # (an attribute-churn session folds many records into few
            # rows; 1.0 means no folding happened).
            metrics.observe(
                "journal.coalesce.fold_ratio",
                self.records_seen / max(len(ops), 1),
            )
        return ops


__all__ = [
    "ChangeRecord",
    "ElementRowCoalescer",
    "InsertMarkup",
    "RemoveMarkup",
    "SetAttribute",
    "UpdateElementRow",
]
