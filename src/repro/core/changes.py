"""Typed change records — the delta protocol of the editing hot path.

Every tracked mutation of a :class:`~repro.core.goddag.GoddagDocument`
emits exactly one record describing what changed, into the document's
bounded delta journal (:meth:`GoddagDocument.changes_since`).  Consumers
— most importantly :class:`~repro.index.manager.IndexManager` — replay
the records to update derived structures *in place* instead of
rebuilding them from scratch after every edit.

Three record types cover the whole mutation surface:

* :class:`InsertMarkup` — an element entered a hierarchy (milestone
  insertion is the zero-width case, :attr:`InsertMarkup.is_milestone`);
* :class:`RemoveMarkup` — an element left a hierarchy (children spliced
  up to its parent);
* :class:`SetAttribute` — one attribute set or deleted (``value is
  None`` encodes deletion, ``old is None`` encodes prior absence).

Records are closed under inversion: ``record.inverse()`` describes the
mutation that undoes ``record``, which is exactly what the editing
layer's undo/redo emits when it reverts or replays a command.  Structural
records additionally carry the *re-pathing context* an incremental
structural summary needs: the label path of the parent the element was
attached under, and the elements whose root-to-self label path changed
because the insertion adopted them (or the removal spliced them up).

The records hold live :class:`~repro.core.node.Element` references on
purpose — the journal is an in-memory, same-process protocol; persisted
deltas travel as the plain-value forms produced by the index manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .node import Element


@dataclass(frozen=True)
class InsertMarkup:
    """An element was inserted into ``hierarchy`` over ``[start, end)``."""

    hierarchy: str
    tag: str
    start: int
    end: int
    attributes: tuple[tuple[str, str], ...]
    ordinal: int
    #: The inserted element itself (live reference, identity-stable).
    element: "Element" = field(repr=False)
    #: Label path of the parent it was attached under (root = ``()``).
    parent_path: tuple[str, ...] = ()
    #: Elements whose label path gained ``tag`` at ``len(parent_path)``
    #: because the insertion adopted their subtree.
    repathed: tuple["Element", ...] = field(default=(), repr=False)

    @property
    def is_milestone(self) -> bool:
        """True for zero-width (milestone) insertions."""
        return self.start == self.end

    def signature(self) -> tuple:
        """The value identity of the mutation (element refs excluded)."""
        return ("insert", self.hierarchy, self.tag, self.start, self.end)

    def inverse(self) -> "RemoveMarkup":
        return RemoveMarkup(
            hierarchy=self.hierarchy, tag=self.tag,
            start=self.start, end=self.end,
            attributes=self.attributes, ordinal=self.ordinal,
            element=self.element, parent_path=self.parent_path,
            repathed=self.repathed,
        )


@dataclass(frozen=True)
class RemoveMarkup:
    """An element was removed; its children were spliced up."""

    hierarchy: str
    tag: str
    start: int
    end: int
    attributes: tuple[tuple[str, str], ...]
    ordinal: int
    #: The removed element (now detached from the document).
    element: "Element" = field(repr=False)
    #: Label path of the parent it was removed from (root = ``()``).
    parent_path: tuple[str, ...] = ()
    #: Elements whose label path lost ``tag`` at ``len(parent_path)``
    #: because the removal spliced their subtree up.
    repathed: tuple["Element", ...] = field(default=(), repr=False)

    @property
    def is_milestone(self) -> bool:
        return self.start == self.end

    def signature(self) -> tuple:
        return ("remove", self.hierarchy, self.tag, self.start, self.end)

    def inverse(self) -> "InsertMarkup":
        return InsertMarkup(
            hierarchy=self.hierarchy, tag=self.tag,
            start=self.start, end=self.end,
            attributes=self.attributes, ordinal=self.ordinal,
            element=self.element, parent_path=self.parent_path,
            repathed=self.repathed,
        )


@dataclass(frozen=True)
class SetAttribute:
    """One attribute changed: set (``value``), or deleted (``value is
    None``); ``old is None`` means the attribute did not exist before."""

    element: "Element" = field(repr=False)
    name: str = ""
    value: str | None = None
    old: str | None = None

    def signature(self) -> tuple:
        return ("attribute", self.name, self.old, self.value)

    def inverse(self) -> "SetAttribute":
        return SetAttribute(
            element=self.element, name=self.name,
            value=self.old, old=self.value,
        )


#: Everything a delta journal may hold.
ChangeRecord = Union[InsertMarkup, RemoveMarkup, SetAttribute]

__all__ = ["ChangeRecord", "InsertMarkup", "RemoveMarkup", "SetAttribute"]
