"""Document order and whole-document traversal over a GODDAG.

The GODDAG generalizes the DOM's document order: within one hierarchy
the order is classical (preorder of the tree); across hierarchies nodes
are interleaved by the canonical key

    ``(start, zero-width-first, -end, element-before-leaf,
       hierarchy rank, depth, ordinal)``

with the shared root first.  Extended XPath's ``following``/``preceding``
axes and node-set sorting are defined on this order.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .goddag import GoddagDocument
from .node import Element, Leaf, Node

#: kind ranks inside the order key
_KIND_ELEMENT = 0
_KIND_LEAF = 1


def order_key(node: Node) -> tuple:
    """Total-order key realizing GODDAG document order.

    Root sorts first; elements sort before the leaf they start with;
    zero-width elements sort at their anchor before solid nodes starting
    there; coextensive same-hierarchy elements sort ancestor-first (by
    depth); cross-hierarchy ties break by hierarchy rank.

    Element keys are cached and stamped with the document version:
    ``depth()`` walks the parent chain, which would otherwise dominate
    large sorts (every structural mutation bumps the version and
    invalidates the cache).
    """
    if isinstance(node, Element):
        if node.is_root:
            return (0,)
        if node._okey_version == node.document.version:
            return node._okey
        rank = node.document.hierarchy(node.hierarchy).rank
        key = (
            1,
            node.start,
            0 if node.is_empty else 1,
            -node.end,
            _KIND_ELEMENT,
            rank,
            node.depth(),
            node.ordinal,
        )
        node._okey = key
        node._okey_version = node.document.version
        return key
    if isinstance(node, Leaf):
        return (1, node.start, 1, -node.end, _KIND_LEAF, 0, 0, node.index)
    raise TypeError(f"not a GODDAG node: {node!r}")


def document_order(nodes: Iterable[Node]) -> list[Node]:
    """Sort nodes into document order, removing duplicates."""
    seen: set[Node] = set()
    unique: list[Node] = []
    for node in nodes:
        if node not in seen:
            seen.add(node)
            unique.append(node)
    unique.sort(key=order_key)
    return unique


def compare(a: Node, b: Node) -> int:
    """-1, 0, or 1 as ``a`` comes before, equals, or follows ``b``."""
    if a == b:
        return 0
    ka, kb = order_key(a), order_key(b)
    if ka < kb:
        return -1
    if ka > kb:
        return 1
    return 0


def all_nodes(document: GoddagDocument, include_root: bool = True) -> list[Node]:
    """Every node of the document (root, elements, leaves) in document order."""
    nodes: list[Node] = []
    if include_root:
        nodes.append(document.root)
    nodes.extend(document.elements())
    nodes.extend(document.leaves())
    nodes.sort(key=order_key)
    return nodes


def following(node: Node) -> Iterator[Node]:
    """Nodes lying entirely after ``node`` (GODDAG ``following`` axis).

    Overlapping and containing nodes are excluded by definition — they
    belong to the ``overlapping``/``containing`` axes instead.
    """
    document = node.document
    for candidate in all_nodes(document, include_root=False):
        if candidate is node:
            continue
        if candidate.start >= node.end and not (
            candidate.span.is_empty
            and node.span.is_empty
            and candidate.start == node.start
        ):
            yield candidate


def preceding(node: Node) -> Iterator[Node]:
    """Nodes lying entirely before ``node`` (GODDAG ``preceding`` axis)."""
    document = node.document
    for candidate in all_nodes(document, include_root=False):
        if candidate is node:
            continue
        if candidate.end <= node.start and not (
            candidate.span.is_empty
            and node.span.is_empty
            and candidate.start == node.start
        ):
            yield candidate


def preorder(document: GoddagDocument, hierarchy: str) -> Iterator[Node]:
    """Classical single-hierarchy preorder: elements and the leaves they
    reach, exactly the DOM traversal of that hierarchy's extended tree."""
    yield document.root

    def walk(element: Element) -> Iterator[Node]:
        for child in document.child_nodes_of(element):
            yield child
            if isinstance(child, Element):
                yield from walk(child)

    root_children = list(document.top_level(hierarchy))
    position = 0
    for child in root_children:
        if child.start > position:
            for leaf in document.leaves_in_range(position, child.start):
                yield leaf
        yield child
        yield from walk(child)
        position = max(position, child.end)
    if document.length > position:
        for leaf in document.leaves_in_range(position, document.length):
            yield leaf
