"""GODDAG nodes: shared root, element nodes, and shared leaves.

A GODDAG (*Generalized Ordered-Descendant Directed Acyclic Graph*) unites
one extended DOM tree per markup hierarchy at two levels:

* the **root**: a single element, common to every hierarchy;
* the **leaves**: the text fragments delimited by markup boundaries of
  *all* hierarchies together.

Between root and leaves, each hierarchy contributes an ordinary ordered
tree of :class:`Element` nodes.  A leaf therefore has one parent chain per
hierarchy, and an element may relate to elements of other hierarchies only
through span arithmetic (containment, overlap) — exactly the navigation
model of the paper's DOM-style GODDAG API.

Element children lists store only *element* children.  Leaf children are
derived on demand from the document's shared :class:`~repro.core.spans.SpanTable`,
so splitting a leaf (an editing operation) never invalidates stored child
lists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping

from .spans import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .goddag import GoddagDocument


#: Sort rank used by document order: elements precede the leaf they start with.
KIND_ELEMENT = 0
KIND_LEAF = 1


class Node:
    """Common facade of GODDAG nodes (root, elements, leaves)."""

    __slots__ = ()

    document: "GoddagDocument"

    # Geometry -----------------------------------------------------------------

    @property
    def span(self) -> Span:
        raise NotImplementedError

    @property
    def start(self) -> int:
        return self.span.start

    @property
    def end(self) -> int:
        return self.span.end

    # Classification ------------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return False

    @property
    def is_element(self) -> bool:
        return False

    @property
    def is_root(self) -> bool:
        return False

    @property
    def text(self) -> str:
        """The document text covered by this node."""
        span = self.span
        return self.document.text[span.start : span.end]


class Leaf(Node):
    """A shared text fragment: one maximal boundary-free segment.

    Leaf objects are lightweight views created on demand; two views of the
    same segment compare equal.  A leaf remembers the span-table version it
    was created under so stale views (outlived by an editing split) can be
    detected.
    """

    __slots__ = ("document", "_index", "_span", "_version")

    def __init__(self, document: "GoddagDocument", index: int) -> None:
        self.document = document
        self._index = index
        self._span = document.spans.leaf_span(index)
        self._version = document.spans.version

    @property
    def index(self) -> int:
        """Position of this leaf in the left-to-right leaf sequence."""
        return self._index

    @property
    def span(self) -> Span:
        return self._span

    @property
    def is_leaf(self) -> bool:
        return True

    @property
    def is_stale(self) -> bool:
        """True when boundaries were added after this view was created and
        this leaf's segment no longer exists as a single leaf."""
        if self._version == self.document.spans.version:
            return False
        table = self.document.spans
        if self._index >= len(table):
            return True
        return table.leaf_span(self._index) != self._span

    # Navigation -----------------------------------------------------------------

    def parents(self, hierarchy: str | None = None) -> list["Element"]:
        """The innermost covering element per hierarchy (root if uncovered).

        With ``hierarchy`` given, the single-element list for that hierarchy.
        The shared root appears at most once even if several hierarchies
        leave this leaf uncovered.
        """
        return self.document.leaf_parents(self, hierarchy)

    def next_leaf(self) -> "Leaf | None":
        """The leaf immediately to the right, or None at the end of text."""
        if self._index + 1 >= len(self.document.spans):
            return None
        return self.document.leaf(self._index + 1)

    def previous_leaf(self) -> "Leaf | None":
        """The leaf immediately to the left, or None at the start of text."""
        if self._index == 0:
            return None
        return self.document.leaf(self._index - 1)

    # Identity ---------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Leaf)
            and other.document is self.document
            and other._span == self._span
        )

    def __hash__(self) -> int:
        return hash((id(self.document), self._span.start, self._span.end))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = self.text if len(self.text) <= 18 else self.text[:15] + "..."
        return f"Leaf#{self._index}[{self.start},{self.end}) {shown!r}"


class Element(Node):
    """An element node of one markup hierarchy.

    Elements span a contiguous character range; within their hierarchy the
    ranges properly nest.  ``ordinal`` is a document-unique birth stamp used
    for stable tie-breaking and — as :attr:`elem_id` — for *persistent*
    identity: both storage backends store it as the element's row id, and
    reconstruction preserves it, so an ordinal observed in one session
    names the same element after any number of save → load round trips
    (see :meth:`repro.storage.store.GoddagStore.element`).
    """

    __slots__ = (
        "document",
        "hierarchy",
        "tag",
        "attributes",
        "ordinal",
        "_start",
        "_end",
        "_parent",
        "_children",
        "_okey",
        "_okey_version",
    )

    def __init__(
        self,
        document: "GoddagDocument",
        hierarchy: str,
        tag: str,
        start: int,
        end: int,
        attributes: Mapping[str, str] | None = None,
        ordinal: int = -1,
    ) -> None:
        self.document = document
        self.hierarchy = hierarchy
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.ordinal = ordinal
        self._start = start
        self._end = end
        self._parent: Element | None = None
        self._children: list[Element] = []
        # Cached document-order key, stamped with the document version
        # (see repro.core.navigation.order_key).
        self._okey: tuple | None = None
        self._okey_version = -1

    # Geometry ------------------------------------------------------------------

    @property
    def span(self) -> Span:
        return Span(self._start, self._end)

    @property
    def start(self) -> int:
        return self._start

    @property
    def end(self) -> int:
        return self._end

    @property
    def is_element(self) -> bool:
        return True

    @property
    def is_empty(self) -> bool:
        """True for zero-width elements (e.g. surviving milestones)."""
        return self._start == self._end

    # Identity -------------------------------------------------------------------

    @property
    def elem_id(self) -> int:
        """The element's stable persistent identity: its birth ordinal.

        Round-trip stable — ``save → load`` preserves it on both storage
        backends (the shared root is always 0) — so it can be handed
        across sessions and resolved with
        :meth:`~repro.core.goddag.GoddagDocument.element_by_ordinal` or,
        without materializing the document, with
        :meth:`~repro.storage.store.GoddagStore.element`.
        """
        return self.ordinal

    # Tree structure ---------------------------------------------------------------

    @property
    def parent(self) -> "Element":
        """The parent element within this element's hierarchy (root at top)."""
        if self._parent is None:
            return self.document.root
        return self._parent

    @property
    def element_children(self) -> tuple["Element", ...]:
        """Element children within this hierarchy, in document order."""
        return tuple(self._children)

    def child_nodes(self) -> list[Node]:
        """Ordered children: element children interleaved with gap leaves.

        Text not covered by any element child appears as the leaves that
        tile the gap.  This realizes the paper's "extended DOM tree where
        text nodes have leaves as children" view.
        """
        return self.document.child_nodes_of(self)

    def ancestors(self) -> Iterator["Element"]:
        """Proper ancestors within the hierarchy, nearest first, root last."""
        node = self._parent
        while node is not None:
            yield node
            node = node._parent
        yield self.document.root

    def descendants(self) -> Iterator["Element"]:
        """All element descendants within the hierarchy, preorder."""
        for child in self._children:
            yield child
            yield from child.descendants()

    def depth(self) -> int:
        """Number of proper element ancestors below the root."""
        count = 0
        node = self._parent
        while node is not None:
            count += 1
            node = node._parent
        return count

    def siblings(self) -> tuple["Element", ...]:
        """All children of this element's parent (including this element)."""
        return self.parent.element_children if self._parent is not None else tuple(
            self.document.top_level(self.hierarchy)
        )

    # Cross-hierarchy navigation (span arithmetic; see core.relations) -----------

    def leaves(self) -> list[Leaf]:
        """The leaves this element covers, left to right."""
        return self.document.leaves_in(self.span)

    def overlapping(self, hierarchy: str | None = None) -> list["Element"]:
        """Elements (of any or one other hierarchy) properly overlapping this."""
        return self.document.overlapping_elements(self, hierarchy)

    def containing(self, hierarchy: str | None = None) -> list["Element"]:
        """Elements of other hierarchies whose span contains this element's."""
        return self.document.containing_elements(self, hierarchy)

    def contained(self, hierarchy: str | None = None) -> list["Element"]:
        """Elements of other hierarchies contained in this element's span."""
        return self.document.contained_elements(self, hierarchy)

    def coextensive(self, hierarchy: str | None = None) -> list["Element"]:
        """Elements of other hierarchies covering exactly the same text."""
        return self.document.coextensive_elements(self, hierarchy)

    # Attributes -----------------------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        """Attribute value lookup with a default, dict-style."""
        return self.attributes.get(name, default)

    def set(self, name: str, value: str) -> None:
        """Set an attribute value (bumps the document version and emits
        a tracked :class:`~repro.core.changes.SetAttribute` record)."""
        self.document.set_attribute(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.tag} #{self.ordinal} [{self._start},{self._end}) "
            f"h={self.hierarchy}>"
        )


class Root(Element):
    """The single root shared by every hierarchy of the document.

    Its element children are the union of the top-level elements of all
    hierarchies; per-hierarchy views are available through
    :meth:`GoddagDocument.top_level`.
    """

    __slots__ = ()

    def __init__(self, document: "GoddagDocument", tag: str = "r") -> None:
        super().__init__(document, hierarchy="", tag=tag, start=0,
                         end=document.length, ordinal=0)

    @property
    def is_root(self) -> bool:
        return True

    @property
    def span(self) -> Span:
        # The root always covers the whole (possibly grown) text.
        return Span(0, self.document.length)

    @property
    def start(self) -> int:
        return 0

    @property
    def end(self) -> int:
        return self.document.length

    @property
    def parent(self) -> "Element":
        raise AttributeError("the root of a GODDAG has no parent")

    @property
    def element_children(self) -> tuple[Element, ...]:
        return tuple(self.document.merged_top_level())

    def child_nodes(self) -> list[Node]:
        return self.document.child_nodes_of(self)

    def ancestors(self) -> Iterator[Element]:
        return iter(())

    def descendants(self) -> Iterator[Element]:
        """Every element of every hierarchy, in document order."""
        yield from self.document.elements()

    def depth(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<root {self.tag!r} [0,{self.end})>"
