"""Character spans and the shared leaf table of a GODDAG.

The whole framework reduces overlap questions to arithmetic on half-open
character spans ``[start, end)`` over one immutable document text.  The
:class:`SpanTable` records every markup boundary contributed by every
hierarchy; the maximal boundary-free segments are the *leaves* that all
hierarchies of the GODDAG share (Sperberg-McQueen & Huitfeldt 2000).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Iterator

from ..errors import SpanError


@dataclass(frozen=True, order=True)
class Span:
    """A half-open character range ``[start, end)``.

    Zero-width spans (``start == end``) are legal; they anchor empty
    elements such as surviving milestones.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise SpanError(f"span start must be >= 0, got {self.start}")
        if self.end < self.start:
            raise SpanError(f"span end {self.end} precedes start {self.start}")

    # -- basic geometry ----------------------------------------------------

    def __len__(self) -> int:
        return self.end - self.start

    @property
    def is_empty(self) -> bool:
        """True for a zero-width span."""
        return self.start == self.end

    def contains_point(self, offset: int) -> bool:
        """True if ``offset`` lies inside the half-open range."""
        return self.start <= offset < self.end

    def contains(self, other: "Span") -> bool:
        """True if ``other`` lies fully inside this span (possibly equal)."""
        return self.start <= other.start and other.end <= self.end

    def properly_contains(self, other: "Span") -> bool:
        """True if ``other`` lies inside this span and the spans differ."""
        return self.contains(other) and self != other

    def intersects(self, other: "Span") -> bool:
        """True if the two spans share at least one character position.

        Zero-width spans never intersect anything: they carry no text.
        """
        if self.is_empty or other.is_empty:
            return False
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Span") -> "Span | None":
        """The common sub-span, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Span(start, end)

    def union_hull(self, other: "Span") -> "Span":
        """The smallest span covering both operands (even when disjoint)."""
        return Span(min(self.start, other.start), max(self.end, other.end))

    # -- the relations of the concurrent-markup algebra ---------------------

    def overlaps(self, other: "Span") -> bool:
        """Proper overlap: the spans intersect and neither contains the other.

        This is the relation behind the Extended XPath ``overlapping`` axis:
        the elements straddle each other's boundary, which is exactly the
        configuration a single XML hierarchy cannot express.
        """
        if not self.intersects(other):
            return False
        return not self.contains(other) and not other.contains(self)

    def left_overlaps(self, other: "Span") -> bool:
        """True when this span straddles ``other``'s *start* boundary."""
        return self.start < other.start < self.end < other.end

    def right_overlaps(self, other: "Span") -> bool:
        """True when this span straddles ``other``'s *end* boundary."""
        return other.start < self.start < other.end < self.end

    def coextensive(self, other: "Span") -> bool:
        """True when both spans cover exactly the same text."""
        return self.start == other.start and self.end == other.end

    def precedes(self, other: "Span") -> bool:
        """Strictly before: every position here is before every position there."""
        return self.end <= other.start and self != other

    def follows(self, other: "Span") -> bool:
        """Strictly after: mirror of :meth:`precedes`."""
        return other.precedes(self)


class SpanTable:
    """The shared boundary table of a GODDAG document.

    Boundaries are character offsets; consecutive boundaries delimit the
    leaves.  ``0`` and ``length`` are always boundaries, so for a non-empty
    text the leaves partition ``[0, length)`` exactly.
    """

    __slots__ = ("_length", "_boundaries", "_version")

    def __init__(self, length: int) -> None:
        if length < 0:
            raise SpanError(f"text length must be >= 0, got {length}")
        self._length = length
        self._boundaries: list[int] = [0, length] if length > 0 else [0]
        # Version stamps let cached leaf objects detect staleness cheaply.
        self._version = 0

    # -- bookkeeping ---------------------------------------------------------

    @property
    def length(self) -> int:
        """Length of the document text the table partitions."""
        return self._length

    @property
    def version(self) -> int:
        """Monotone counter bumped whenever a boundary is added."""
        return self._version

    @property
    def boundaries(self) -> tuple[int, ...]:
        """All boundaries in ascending order (always includes 0 and length)."""
        return tuple(self._boundaries)

    def __len__(self) -> int:
        """Number of leaves."""
        return max(0, len(self._boundaries) - 1)

    # -- mutation -------------------------------------------------------------

    def add_boundary(self, offset: int) -> bool:
        """Record a markup boundary; returns True if it split a leaf.

        Adding an existing boundary is a no-op, so drivers can feed every
        tag position without pre-deduplicating.
        """
        if offset < 0 or offset > self._length:
            raise SpanError(
                f"boundary {offset} outside document of length {self._length}"
            )
        i = bisect_left(self._boundaries, offset)
        if i < len(self._boundaries) and self._boundaries[i] == offset:
            return False
        insort(self._boundaries, offset)
        self._version += 1
        return True

    def add_boundaries(self, offsets) -> None:
        """Bulk-record boundaries (used by builders for speed)."""
        merged = set(self._boundaries)
        for offset in offsets:
            if offset < 0 or offset > self._length:
                raise SpanError(
                    f"boundary {offset} outside document of length {self._length}"
                )
            merged.add(offset)
        if len(merged) != len(self._boundaries):
            self._boundaries = sorted(merged)
            self._version += 1

    def add_span(self, span: Span) -> None:
        """Record both boundaries of ``span``."""
        if span.end > self._length:
            raise SpanError(
                f"span {span} outside document of length {self._length}"
            )
        self.add_boundary(span.start)
        self.add_boundary(span.end)

    # -- leaf geometry ---------------------------------------------------------

    def leaf_span(self, index: int) -> Span:
        """The character span of leaf ``index`` (0-based)."""
        if index < 0 or index >= len(self):
            raise SpanError(f"leaf index {index} out of range (have {len(self)})")
        return Span(self._boundaries[index], self._boundaries[index + 1])

    def leaf_index_at(self, offset: int) -> int:
        """Index of the leaf whose span contains ``offset``."""
        if offset < 0 or offset >= self._length:
            raise SpanError(
                f"offset {offset} outside document of length {self._length}"
            )
        return bisect_right(self._boundaries, offset) - 1

    def leaf_range(self, span: Span) -> tuple[int, int]:
        """Half-open leaf index range ``[first, last)`` covered by ``span``.

        ``span`` boundaries must already be in the table (they are, for any
        span that entered the document through markup).  Zero-width spans
        return an empty range anchored at the insertion point.
        """
        first = bisect_left(self._boundaries, span.start)
        if first >= len(self._boundaries) or self._boundaries[first] != span.start:
            raise SpanError(f"span start {span.start} is not a leaf boundary")
        if span.is_empty:
            return (first, first)
        last = bisect_left(self._boundaries, span.end)
        if last >= len(self._boundaries) or self._boundaries[last] != span.end:
            raise SpanError(f"span end {span.end} is not a leaf boundary")
        return (first, last)

    def spans(self) -> Iterator[Span]:
        """Iterate the spans of all leaves, left to right."""
        for i in range(len(self)):
            yield Span(self._boundaries[i], self._boundaries[i + 1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanTable(length={self._length}, leaves={len(self)})"
