"""Structural relations between GODDAG nodes.

These are the semantic primitives of the Extended XPath axes and of the
document analytics the demo shows (e.g. "which damage regions overlap
which words").  Everything reduces to span arithmetic plus hierarchy
membership; all predicates are O(1) except dominance between elements,
which walks one parent chain.

The relations partition node pairs cleanly: for solid (non-empty)
elements ``x != y`` exactly one of *dominates*, *is dominated by*,
*precedes*, *follows*, *overlaps*, or *coextensive-in-another-hierarchy*
holds.  That partition is what makes the ``overlapping`` axis a genuine
complement of the classical XPath axes.
"""

from __future__ import annotations

from .node import Element, Leaf, Node


def dominates(a: Node, b: Node) -> bool:
    """True iff ``b`` is reachable from ``a`` along child edges (a != b).

    * the root dominates everything else;
    * an element dominates the leaves its span covers;
    * an element dominates an element only within its own hierarchy
      (cross-hierarchy containment is :func:`contains_span`, not
      dominance — there is no child path between the trees).
    """
    if a is b:
        return False
    if not isinstance(a, Element):
        return False
    if a.is_root:
        return True
    if isinstance(b, Leaf):
        return not a.is_empty and a.span.contains(b.span)
    if not isinstance(b, Element) or b.is_root:
        return False
    if a.hierarchy != b.hierarchy:
        return False
    node = b._parent
    while node is not None:
        if node is a:
            return True
        node = node._parent
    return False


def contains_span(a: Node, b: Node) -> bool:
    """Pure span containment, ignoring hierarchies (used by the
    ``containing``/``contained`` Extended XPath axes)."""
    if a is b:
        return False
    if isinstance(a, Element) and a.is_empty:
        return False
    return a.span.contains(b.span)


def overlaps(a: Node, b: Node) -> bool:
    """Proper overlap: spans intersect, neither contains the other.

    Only solid elements of *different* hierarchies can overlap; leaves
    are boundary-free by construction so they never straddle anything.
    """
    if not (isinstance(a, Element) and isinstance(b, Element)):
        return False
    if a.is_root or b.is_root or a.is_empty or b.is_empty:
        return False
    if a.hierarchy == b.hierarchy:
        return False
    return a.span.overlaps(b.span)


def left_overlaps(a: Node, b: Node) -> bool:
    """``a`` straddles ``b``'s start boundary."""
    return overlaps(a, b) and a.span.left_overlaps(b.span)


def right_overlaps(a: Node, b: Node) -> bool:
    """``a`` straddles ``b``'s end boundary."""
    return overlaps(a, b) and a.span.right_overlaps(b.span)


def coextensive(a: Node, b: Node) -> bool:
    """Same span, different node (any hierarchies, both solid elements)."""
    if a is b:
        return False
    if not (isinstance(a, Element) and isinstance(b, Element)):
        return False
    if a.is_root or b.is_root or a.is_empty or b.is_empty:
        return False
    return a.span.coextensive(b.span)


def precedes(a: Node, b: Node) -> bool:
    """``a`` lies entirely before ``b`` (a.end <= b.start, disjoint).

    This is the GODDAG reading of XPath's ``following``/``preceding``:
    nodes that straddle each other are in the ``overlapping`` axis, in
    neither ``following`` nor ``preceding``.  Zero-width nodes use their
    anchor point.
    """
    if a is b:
        return False
    return a.end <= b.start and not (
        a.span.is_empty and b.span.is_empty and a.start == b.start
    )


def follows(a: Node, b: Node) -> bool:
    """Mirror of :func:`precedes`."""
    return precedes(b, a)


def shared_leaves(a: Element, b: Element) -> list[Leaf]:
    """The leaves two elements have in common (empty list when disjoint).

    This realizes the demo's "requests for overlapping content given two
    tags": the shared leaves *are* the overlapping content.
    """
    common = a.span.intersection(b.span)
    if common is None:
        return []
    return a.document.leaves_in(common)


def overlap_text(a: Element, b: Element) -> str:
    """The text two elements share (empty string when disjoint)."""
    common = a.span.intersection(b.span)
    if common is None:
        return ""
    return a.document.text[common.start : common.end]


def relation_name(a: Node, b: Node) -> str:
    """Human-readable name of the relation from ``a`` to ``b``.

    One of ``self``, ``dominates``, ``dominated-by``, ``overlaps``,
    ``coextensive``, ``precedes``, ``follows``, or ``incomparable``
    (zero-width corner cases).  Used by diagnostics and tests of the
    partition property.
    """
    if a is b:
        return "self"
    if dominates(a, b):
        return "dominates"
    if dominates(b, a):
        return "dominated-by"
    if overlaps(a, b):
        return "overlaps"
    if coextensive(a, b):
        return "coextensive"
    if precedes(a, b):
        return "precedes"
    if follows(a, b):
        return "follows"
    if contains_span(a, b):
        return "contains-span"
    if contains_span(b, a):
        return "contained-span"
    return "incomparable"
