"""A static interval index over span-carrying items.

Cross-hierarchy queries (the ``overlapping`` axis, leaf-parent lookup,
containment sweeps) need *stabbing* and *intersection* queries over the
element population of a hierarchy.  Within one hierarchy spans properly
nest, but across hierarchies they form arbitrary interval sets, so the
index makes no nesting assumption.

The structure is the classic "sort by start + segment tree over maximum
end" augmentation: a query descends only into subtrees whose max-end
clears the threshold, giving ``O(log n + k)`` per query.  The index is
static; the owning document rebuilds it lazily after mutations.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Generic, Sequence, TypeVar

T = TypeVar("T")


class StaticIntervalIndex(Generic[T]):
    """Index ``items`` by half-open spans for fast geometric queries."""

    __slots__ = ("_items", "_starts", "_ends", "_tree", "_size")

    def __init__(
        self,
        items: Sequence[T],
        start_of: Callable[[T], int] = lambda item: item.start,  # type: ignore[attr-defined]
        end_of: Callable[[T], int] = lambda item: item.end,  # type: ignore[attr-defined]
    ) -> None:
        decorated = sorted(
            ((start_of(item), -end_of(item), i) for i, item in enumerate(items))
        )
        self._items: list[T] = [items[i] for (_, _, i) in decorated]
        self._starts: list[int] = [s for (s, _, _) in decorated]
        self._ends: list[int] = [-negated for (_, negated, _) in decorated]
        n = len(self._items)
        self._size = n
        # Perfectly balanced implicit segment tree over max(end) per range.
        tree_len = 1
        while tree_len < max(1, n):
            tree_len *= 2
        self._tree = [-1] * (2 * tree_len)
        for i, end in enumerate(self._ends):
            self._tree[tree_len + i] = end
        for i in range(tree_len - 1, 0, -1):
            self._tree[i] = max(self._tree[2 * i], self._tree[2 * i + 1])

    def __len__(self) -> int:
        return self._size

    # -- internal ------------------------------------------------------------

    def _collect_end_gt(self, lo: int, hi: int, threshold: int) -> list[T]:
        """All items with index in ``[lo, hi)`` whose end > ``threshold``."""
        out: list[T] = []
        if lo >= hi:
            return out
        leaves = len(self._tree) // 2

        def descend(node: int, node_lo: int, node_hi: int) -> None:
            if node_lo >= hi or node_hi <= lo or self._tree[node] <= threshold:
                return
            if node_hi - node_lo == 1:
                out.append(self._items[node_lo])
                return
            mid = (node_lo + node_hi) // 2
            descend(2 * node, node_lo, mid)
            descend(2 * node + 1, mid, node_hi)

        descend(1, 0, leaves)
        return out

    # -- queries ---------------------------------------------------------------

    def intersecting(self, start: int, end: int) -> list[T]:
        """Items sharing at least one character position with ``[start, end)``.

        Result is ordered by ``(start, -end)``, i.e. outermost-first among
        items that begin together.
        """
        hi = bisect_left(self._starts, end)
        return self._collect_end_gt(0, hi, start)

    def stabbing(self, offset: int) -> list[T]:
        """Items whose span contains the character position ``offset``."""
        return self.intersecting(offset, offset + 1)

    def containing(self, start: int, end: int) -> list[T]:
        """Items whose span contains ``[start, end)`` entirely (allows equal).

        For zero-width targets (``start == end``) this returns the items
        with ``item.start <= start`` and ``item.end >= end``.
        """
        hi = bisect_right(self._starts, start)
        if start == end:
            # Threshold is inclusive for zero-width anchors.
            return self._collect_end_ge(0, hi, end)
        return self._collect_end_gt(0, hi, end - 1)

    def _collect_end_ge(self, lo: int, hi: int, threshold: int) -> list[T]:
        """All items with index in ``[lo, hi)`` whose end >= ``threshold``."""
        return self._collect_end_gt(lo, hi, threshold - 1)

    def contained_in(self, start: int, end: int) -> list[T]:
        """Items whose span lies entirely within ``[start, end)``."""
        lo = bisect_left(self._starts, start)
        hi = bisect_left(self._starts, end)
        return [
            item
            for item, item_end in zip(self._items[lo:hi], self._ends[lo:hi])
            if item_end <= end
        ]

    def all_items(self) -> list[T]:
        """All indexed items ordered by ``(start, -end)``."""
        return list(self._items)
