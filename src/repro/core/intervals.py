"""A static interval index over span-carrying items.

Cross-hierarchy queries (the ``overlapping`` axis, leaf-parent lookup,
containment sweeps) need *stabbing* and *intersection* queries over the
element population of a hierarchy.  Within one hierarchy spans properly
nest, but across hierarchies they form arbitrary interval sets, so the
index makes no nesting assumption.

The structure is the classic "sort by start + segment tree over maximum
end" augmentation: a query descends only into subtrees whose max-end
clears the threshold, giving ``O(log n + k)`` per query.  The index is
static; the owning document rebuilds it lazily after mutations.

Zero-width spans (``start == end``) are *anchored* at their offset
rather than silently dropped: for intersection and stabbing a
zero-width item at ``a`` behaves like the position ``a`` itself (it is
reported for every query window with ``start <= a < end``), for
containment it participates by set inclusion (``[a, a)`` is contained
in any window reaching ``a`` and contains only the zero-width window at
``a``).  Empty item sequences build a valid index that answers every
query with the empty list.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Generic, Sequence, TypeVar

T = TypeVar("T")


class StaticIntervalIndex(Generic[T]):
    """Index ``items`` by half-open spans for fast geometric queries."""

    __slots__ = ("_items", "_starts", "_ends", "_tree", "_size")

    def __init__(
        self,
        items: Sequence[T],
        start_of: Callable[[T], int] = lambda item: item.start,  # type: ignore[attr-defined]
        end_of: Callable[[T], int] = lambda item: item.end,  # type: ignore[attr-defined]
    ) -> None:
        decorated = sorted(
            ((start_of(item), -end_of(item), i) for i, item in enumerate(items))
        )
        self._items: list[T] = [items[i] for (_, _, i) in decorated]
        self._starts: list[int] = [s for (s, _, _) in decorated]
        self._ends: list[int] = [-negated for (_, negated, _) in decorated]
        n = len(self._items)
        self._size = n
        # Perfectly balanced implicit segment tree over max(end) per range.
        # Zero-width spans enter the tree with the anchored end start+1 so
        # intersection sees them as their anchor position; the true ends
        # stay in _ends for the containment filters.
        tree_len = 1
        while tree_len < max(1, n):
            tree_len *= 2
        self._tree = [-1] * (2 * tree_len)
        for i, (start, end) in enumerate(zip(self._starts, self._ends)):
            self._tree[tree_len + i] = end if end > start else start + 1
        for i in range(tree_len - 1, 0, -1):
            self._tree[i] = max(self._tree[2 * i], self._tree[2 * i + 1])

    def __len__(self) -> int:
        return self._size

    # -- internal ------------------------------------------------------------

    def _collect_indices_gt(self, lo: int, hi: int, threshold: int) -> list[int]:
        """Indices in ``[lo, hi)`` whose (anchored) end > ``threshold``."""
        out: list[int] = []
        if lo >= hi or not self._size:
            return out
        leaves = len(self._tree) // 2

        def descend(node: int, node_lo: int, node_hi: int) -> None:
            if node_lo >= hi or node_hi <= lo or self._tree[node] <= threshold:
                return
            if node_hi - node_lo == 1:
                out.append(node_lo)
                return
            mid = (node_lo + node_hi) // 2
            descend(2 * node, node_lo, mid)
            descend(2 * node + 1, mid, node_hi)

        descend(1, 0, leaves)
        return out

    # -- queries ---------------------------------------------------------------

    def intersecting(self, start: int, end: int) -> list[T]:
        """Items sharing at least one character position with ``[start, end)``.

        Result is ordered by ``(start, -end)``, i.e. outermost-first among
        items that begin together.  Zero-width items anchored at ``a`` are
        included when ``start <= a < end``.
        """
        hi = bisect_left(self._starts, end)
        return [self._items[i] for i in self._collect_indices_gt(0, hi, start)]

    def stabbing(self, offset: int) -> list[T]:
        """Items whose span contains the character position ``offset``
        (including zero-width items anchored exactly at ``offset``)."""
        return self.intersecting(offset, offset + 1)

    def containing(self, start: int, end: int) -> list[T]:
        """Items whose span contains ``[start, end)`` entirely (allows equal).

        For zero-width targets (``start == end``) this returns the items
        with ``item.start <= start`` and ``item.end >= end`` — boundary
        inclusive, so an item ending exactly at the anchor contains it.
        A zero-width *item* contains only the zero-width target at its
        own anchor.
        """
        hi = bisect_right(self._starts, start)
        return [
            self._items[i]
            for i in self._collect_indices_gt(0, hi, end - 1)
            if self._ends[i] >= end
        ]

    def contained_in(self, start: int, end: int) -> list[T]:
        """Items whose span lies entirely within ``[start, end)``.

        By set inclusion a zero-width item anchored at ``a`` is contained
        whenever ``start <= a <= end``.
        """
        lo = bisect_left(self._starts, start)
        hi = bisect_right(self._starts, end)
        return [
            item
            for item, item_end in zip(self._items[lo:hi], self._ends[lo:hi])
            if item_end <= end
        ]

    def all_items(self) -> list[T]:
        """All indexed items ordered by ``(start, -end)``."""
        return list(self._items)
