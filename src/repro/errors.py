"""Exception hierarchy for the concurrent-XML framework.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Errors carry enough structured
context (offsets, tags, hierarchy names) for tools such as the xTagger
editing layer to present precise diagnostics.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by :mod:`repro`."""


class SpanError(ReproError):
    """An invalid character span (negative, inverted, or out of range)."""


class MarkupConflictError(ReproError):
    """Markup inserted into a hierarchy overlaps existing markup of that
    same hierarchy (within one hierarchy markup must nest)."""

    def __init__(self, message: str, *, hierarchy: str | None = None,
                 tag: str | None = None, start: int | None = None,
                 end: int | None = None) -> None:
        super().__init__(message)
        self.hierarchy = hierarchy
        self.tag = tag
        self.start = start
        self.end = end


class WellFormednessError(ReproError):
    """A single-hierarchy encoding is not well formed (mismatched tags,
    text outside the root, unterminated markup...)."""

    def __init__(self, message: str, *, line: int | None = None,
                 column: int | None = None, offset: int | None = None) -> None:
        super().__init__(message)
        self.line = line
        self.column = column
        self.offset = offset


class TextMismatchError(ReproError):
    """The documents of a distributed document do not share the same text
    content, so they cannot be united into one GODDAG."""

    def __init__(self, message: str, *, offset: int | None = None,
                 expected: str | None = None, found: str | None = None) -> None:
        super().__init__(message)
        self.offset = offset
        self.expected = expected
        self.found = found


class HierarchyError(ReproError):
    """Unknown hierarchy, duplicate hierarchy name, or a tag claimed by
    two hierarchies of the same concurrent schema."""


class DTDSyntaxError(ReproError):
    """The DTD source could not be parsed."""

    def __init__(self, message: str, *, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class ValidationError(ReproError):
    """A hierarchy tree violates its DTD."""

    def __init__(self, message: str, *, tag: str | None = None,
                 hierarchy: str | None = None) -> None:
        super().__init__(message)
        self.tag = tag
        self.hierarchy = hierarchy


class PotentialValidityError(ValidationError):
    """An edit would make the document impossible to ever complete into a
    valid one (the prevalidation check of xTagger rejected it)."""


class XPathSyntaxError(ReproError):
    """An Extended XPath expression could not be parsed."""

    def __init__(self, message: str, *, position: int | None = None,
                 expression: str | None = None) -> None:
        super().__init__(message)
        self.position = position
        self.expression = expression


class XPathEvaluationError(ReproError):
    """An Extended XPath expression failed during evaluation (type error,
    unknown function, unknown hierarchy prefix...)."""


class SerializationError(ReproError):
    """A GODDAG could not be exported to the requested representation."""


class StorageError(ReproError):
    """The persistent store is corrupt, missing, or refused an operation."""


class FilterError(ReproError):
    """A filtering/projection request was invalid (unknown hierarchy,
    bad extraction window...)."""


class EditError(ReproError):
    """An editing operation was rejected (bad range, unknown node,
    empty undo stack...)."""


class IndexDeltaError(ReproError):
    """An incremental index update could not be applied (the delta and
    the index state disagree); the consumer falls back to a rebuild."""


class StoreBusyError(StorageError):
    """The database stayed locked past the bounded retry budget (another
    writer held it longer than the backoff schedule tolerates).  The
    failed transaction was rolled back cleanly; retrying the operation
    later is safe."""

    def __init__(self, message: str, *, attempts: int | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts


class PoolExhaustedError(StorageError):
    """Every pooled connection was in use for the whole acquisition
    timeout.  Nothing was read or written; raise the pool size or shed
    load."""


class ServiceError(ReproError):
    """Base class of the concurrent document-service errors."""


class SnapshotSupersededError(ServiceError):
    """A writer published a newer version of the document after this
    read session opened.  The session's snapshot is still fully
    queryable — snapshots are immutable — but it no longer reflects the
    stored document; open a new read session to see the new version."""

    def __init__(self, message: str, *, name: str | None = None,
                 snapshot: str | None = None,
                 current: str | None = None) -> None:
        super().__init__(message)
        self.name = name
        self.snapshot = snapshot
        self.current = current


class WriteConflictError(ServiceError):
    """A second writer published the document between this write
    session's open and its publish (they raced through different
    service instances or processes — within one service the
    per-document write lock serializes writers).  Nothing was written;
    re-open a write session on the new version and re-apply the edits."""

    def __init__(self, message: str, *, name: str | None = None,
                 expected: str | None = None,
                 found: str | None = None) -> None:
        super().__init__(message)
        self.name = name
        self.expected = expected
        self.found = found


class WriteLockTimeoutError(ServiceError):
    """The per-document write lock stayed held past the acquisition
    timeout (a long-lived write session on the same document).  No
    session was opened."""
