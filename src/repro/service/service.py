"""The concurrent document service: many readers, one writer per document.

:class:`DocumentService` is the session layer over a WAL-mode
:class:`~repro.storage.GoddagStore`: a process serving one shared
database file to many threads, each of which works through short-lived
*sessions* instead of sharing mutable library objects.

The concurrency contract (the full version lives in
docs/ARCHITECTURE.md, "Service layer & concurrency contract"):

* **Nothing mutable is shared across sessions.**  Every session
  materializes its own :class:`~repro.core.goddag.GoddagDocument` and
  builds its own :class:`~repro.index.manager.IndexManager` — the same
  per-evaluator isolation lxml's XPath layer uses (per-evaluator locks,
  no shared mutable parser state).  The only cross-thread structures
  are immutable snapshots, the locked compiled-plan cache, and the
  database file itself (WAL mode: readers on other connections proceed
  while a writer commits).
* **Read sessions are snapshot-isolated.**  :meth:`read_session` loads
  the document at one *generation* (the stored index stamp) and the
  snapshot never changes afterwards — a writer publishing a new version
  does not disturb open readers.  Staleness is observable, not imposed:
  :meth:`ReadSession.is_current` / :meth:`ReadSession.require_current`
  surface a newer published generation as the typed
  :class:`~repro.errors.SnapshotSupersededError`; re-open to see it.
* **Write sessions serialize per document.**  :meth:`write_session`
  holds the document's write lock (in-process; acquisition waits are
  timed on ``service.lock_wait`` and bounded by the typed
  :class:`~repro.errors.WriteLockTimeoutError`), applies tracked edits
  through an :class:`~repro.editing.Editor`, and publishes atomically
  via the stamped :meth:`~repro.storage.GoddagStore.save_indexed` —
  row-level element and index patches under in-transaction stamp
  re-verification.  A second writer racing the publish from another
  service instance or process surfaces as the typed
  :class:`~repro.errors.WriteConflictError`; nothing is written.
* **Database work is pooled and bounded.**  Sessions borrow a
  connection from a :class:`~repro.storage.SqliteConnectionPool` only
  while they touch the database (snapshot load, stamp probe, publish)
  and return it immediately, so ``pool_size`` bounds concurrent
  database work, not session count.  SQLITE_BUSY is retried with
  bounded backoff at the storage layer and surfaces as the typed
  :class:`~repro.errors.StoreBusyError` past the budget.

Observability: session opens/closes land on the
``service.read_sessions.*`` / ``service.write_sessions.*`` counters,
publishes on ``service.publishes``, detected conflicts on
``service.conflicts``, superseded-snapshot checks on
``service.snapshot_checks`` / ``service.snapshots.superseded``, write
lock waits on the ``service.lock_wait`` timer, and the pool reports
``storage.pool.in_use`` / ``storage.pool.wait`` / ``storage.busy_*``
(see :mod:`repro.obs`).
"""

from __future__ import annotations

import threading
from pathlib import Path

from ..core.goddag import GoddagDocument
from ..core.node import Node
from ..editing import Editor
from ..errors import (
    ServiceError,
    SnapshotSupersededError,
    WriteLockTimeoutError,
)
from ..index.manager import IndexManager
from ..obs.metrics import metrics
from ..storage.sqlite_backend import SqliteConnectionPool, SqliteStore
from ..storage.store import GoddagStore
from ..xpath.engine import ExtendedXPath
from ..xpath.evaluator import XPathValue

#: Bounded attempts to read a (document, generation) pair that did not
#: change mid-load; each publish between the two stamp probes retries.
_SNAPSHOT_ATTEMPTS = 8


class _Session:
    """State shared by read and write sessions: one private snapshot
    document, one private index manager, one generation mark.

    A session object is **not** thread-safe — it belongs to the thread
    that opened it (the service itself is thread-safe and cheap to open
    sessions on).  Closing is idempotent; a closed session refuses
    further queries with :class:`~repro.errors.ServiceError`.
    """

    def __init__(self, service: "DocumentService", name: str,
                 document: GoddagDocument, manager: IndexManager,
                 generation: str | None) -> None:
        self._service = service
        self.name = name
        self.document = document
        self.manager = manager
        #: The stored index stamp this session's snapshot corresponds
        #: to (``None`` when the document was stored without an index).
        self.generation = generation
        self._open = True

    def _check_open(self) -> None:
        if not self._open:
            raise ServiceError(
                f"session on {self.name!r} is closed"
            )

    def query(self, expression: str, context: Node | None = None,
              variables: dict | None = None) -> XPathValue:
        """Evaluate an Extended XPath expression against this session's
        snapshot (index-served through the session's own manager; the
        compiled plan comes from the process-wide locked plan cache)."""
        self._check_open()
        return ExtendedXPath(expression).evaluate(
            self.document, context, variables
        )

    def is_current(self) -> bool:
        """True while no writer has published a newer generation."""
        self._check_open()
        metrics.incr("service.snapshot_checks")
        return self._service._generation(self.name) == self.generation

    def require_current(self) -> None:
        """Raise :class:`~repro.errors.SnapshotSupersededError` when a
        newer generation is stored.  The snapshot itself stays fully
        queryable either way — supersession is advice to re-open, not
        an invalidation."""
        self._check_open()
        metrics.incr("service.snapshot_checks")
        current = self._service._generation(self.name)
        if current != self.generation:
            metrics.incr("service.snapshots.superseded")
            raise SnapshotSupersededError(
                f"document {self.name!r} was republished after this "
                "session opened; re-open to see the new version",
                name=self.name, snapshot=self.generation or "",
                current=current or "",
            )

    def close(self) -> None:
        self._open = False

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ReadSession(_Session):
    """A snapshot-isolated read view of one stored document.

    The snapshot is a private materialization: queries run on it with a
    per-session :class:`~repro.index.manager.IndexManager`, sharing no
    mutable state with any other session, and keep answering at the
    session's :attr:`generation` no matter how many writers publish
    after it opened.
    """

    def close(self) -> None:
        if self._open:
            metrics.incr("service.read_sessions.closed")
        super().close()


class WriteSession(_Session):
    """The single writer of one document, edits tracked, publish stamped.

    Holds the service's per-document write lock from open to close.
    Edits go through :attr:`editor` (an
    :class:`~repro.editing.Editor` over the session's private
    document, so every mutation lands in the delta journal); a clean
    ``with`` exit publishes via :meth:`publish` — the stamped,
    row-level :meth:`~repro.storage.GoddagStore.save_indexed` — while
    an exception discards the session without writing anything.
    """

    def __init__(self, service: "DocumentService", name: str,
                 document: GoddagDocument, manager: IndexManager,
                 generation: str | None, lock: threading.Lock,
                 prevalidate: bool = True) -> None:
        super().__init__(service, name, document, manager, generation)
        self._lock = lock
        self.editor = Editor(document, prevalidate=prevalidate)
        self.published = False

    def publish(self) -> str | None:
        """Persist the session's edits as one new stored generation.

        Atomic (one transaction brings document rows and index rows in
        step, with in-transaction stamp re-verification) and row-level
        (the delta journal's coalesced write set — an attribute-only
        session writes O(1) rows).  On success :attr:`generation`
        becomes the newly stored stamp and the session may keep
        editing toward another publish.  A racing writer from outside
        this service raises
        :class:`~repro.errors.WriteConflictError`; a database that
        stays locked past the bounded retries raises
        :class:`~repro.errors.StoreBusyError`.  Either way nothing was
        written and the session stays open.
        """
        self._check_open()
        with self._service._pool.connection() as backend:
            store = GoddagStore.over(backend)
            with metrics.time("service.publish"):
                store.save_indexed(
                    self.document, self.name, self.manager,
                    strict_stamp=True,
                )
            self.generation = backend.index_stamp(self.name)
        metrics.incr("service.publishes")
        self.published = True
        return self.generation

    def close(self) -> None:
        """Release the write lock without publishing (idempotent)."""
        if self._open:
            metrics.incr("service.write_sessions.closed")
            self._lock.release()
        super().close()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        try:
            if exc_type is None:
                self.publish()
        finally:
            self.close()


class DocumentService:
    """A thread-safe session layer over one WAL-mode document store.

        service = DocumentService("editions.db", pool_size=8)
        service.create(document, "hamlet")

        with service.read_session("hamlet") as session:   # any thread
            lines = session.query("//line")               # snapshot

        with service.write_session("hamlet") as session:  # one writer
            session.editor.insert_markup("physical", "seg", 10, 60)
            # publishes atomically on clean exit

    See the module docstring for the concurrency contract.  The
    ``location`` must be a database *file* (WAL mode and connection
    pooling are per-file by construction; ``:memory:`` is rejected at
    the pool).
    """

    def __init__(self, location: str | Path, *, pool_size: int = 8,
                 busy_timeout_ms: int = 5000,
                 lock_timeout_s: float = 30.0,
                 pool_timeout_s: float = 30.0) -> None:
        self.location = str(location)
        self.lock_timeout_s = lock_timeout_s
        self._pool = SqliteConnectionPool(
            self.location, pool_size, wal=True,
            busy_timeout_ms=busy_timeout_ms,
            acquire_timeout_s=pool_timeout_s,
        )
        self._write_locks: dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._corpus = None
        self._corpus_guard = threading.Lock()

    # -- plumbing ---------------------------------------------------------------

    @property
    def pool(self) -> SqliteConnectionPool:
        """The underlying connection pool (occupancy via ``pool.in_use``)."""
        return self._pool

    @property
    def corpus(self):
        """The collection-scale view over this service's store: a
        :class:`~repro.collection.Corpus` sharing the service's
        connection pool, so cross-document queries
        (``collection()//sp``) run against exactly the documents the
        sessions serve — including their routing summary, which every
        publish maintains as a delta."""
        with self._corpus_guard:
            if self._corpus is None:
                from ..collection import Corpus

                self._corpus = Corpus.over(self._pool)
            return self._corpus

    def collection_query(self, expression: str, *, routing: bool = True,
                         mode: str = "serial",
                         workers: int | None = None):
        """Run a cross-document ``collection()...`` query over every
        stored document (see :meth:`repro.collection.Corpus.query`)."""
        return self.corpus.query(
            expression, routing=routing, mode=mode, workers=workers
        )

    def _write_lock(self, name: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._write_locks.get(name)
            if lock is None:
                lock = self._write_locks[name] = threading.Lock()
            return lock

    def _generation(self, name: str) -> str | None:
        with self._pool.connection() as backend:
            return backend.index_stamp(name)

    def _snapshot(
        self, backend: SqliteStore, name: str
    ) -> tuple[GoddagDocument, str | None]:
        """A (document, generation) pair that is internally consistent:
        the stamp is re-probed after the load and the load retried when
        a writer published in between (publishes are one transaction,
        so equal stamps bracket an untouched row set)."""
        store = GoddagStore.over(backend)
        for _ in range(_SNAPSHOT_ATTEMPTS):
            before = backend.index_stamp(name)
            document = store.load(name)
            if backend.index_stamp(name) == before:
                return document, before
        raise ServiceError(
            f"document {name!r} kept being republished while opening "
            f"a snapshot ({_SNAPSHOT_ATTEMPTS} attempts)"
        )

    # -- document administration -------------------------------------------------

    def create(self, document: GoddagDocument, name: str,
               overwrite: bool = False) -> str | None:
        """Store and index ``document`` under ``name``; returns the new
        generation stamp.  ``overwrite=True`` replaces an existing
        document wholesale (take the write lock first — via
        :meth:`write_session` — if writers may be active on it)."""
        manager = document.index_manager
        if manager is None or manager.document is not document:
            manager = IndexManager(document)
        with self._pool.connection() as backend:
            GoddagStore.over(backend).save_indexed(
                document, name, manager, overwrite=overwrite
            )
            return backend.index_stamp(name)

    def delete(self, name: str) -> None:
        """Delete a stored document (under its write lock, so an active
        write session finishes first)."""
        lock = self._write_lock(name)
        if not lock.acquire(timeout=self.lock_timeout_s):
            raise WriteLockTimeoutError(
                f"write lock on {name!r} not released within "
                f"{self.lock_timeout_s:.1f}s"
            )
        try:
            with self._pool.connection() as backend:
                GoddagStore.over(backend).delete(name)
        finally:
            lock.release()

    def names(self) -> list[str]:
        with self._pool.connection() as backend:
            return backend.names()

    def has(self, name: str) -> bool:
        with self._pool.connection() as backend:
            return backend.has(name)

    # -- sessions ---------------------------------------------------------------

    def read_session(self, name: str) -> ReadSession:
        """Open a snapshot-isolated read session (see :class:`ReadSession`).

        The database connection is borrowed only for the snapshot load;
        the returned session holds no pooled resources, so any number
        of read sessions may be open at once.
        """
        with self._pool.connection() as backend:
            document, generation = self._snapshot(backend, name)
        manager = IndexManager(document).attach()
        metrics.incr("service.read_sessions.opened")
        return ReadSession(self, name, document, manager, generation)

    def write_session(self, name: str, timeout: float | None = None,
                      prevalidate: bool = True) -> WriteSession:
        """Open the (single) write session for ``name``.

        Blocks up to ``timeout`` (default: the service's
        ``lock_timeout_s``) for the per-document write lock — waits are
        timed on ``service.lock_wait`` — then raises the typed
        :class:`~repro.errors.WriteLockTimeoutError`.  The session's
        manager starts delta accounting against the stored artifact at
        open, so its eventual publish is a row-level patch, and the
        publish verifies the artifact generation in-transaction (see
        :meth:`WriteSession.publish`).
        """
        lock = self._write_lock(name)
        with metrics.time("service.lock_wait"):
            acquired = lock.acquire(
                timeout=self.lock_timeout_s if timeout is None else timeout
            )
        if not acquired:
            raise WriteLockTimeoutError(
                f"write lock on {name!r} not released within "
                f"{(self.lock_timeout_s if timeout is None else timeout):.1f}s"
            )
        try:
            with self._pool.connection() as backend:
                document, generation = self._snapshot(backend, name)
            manager = IndexManager(document).attach()
            # The stored artifact is exactly this manager's state (a
            # publish writes document and index in one stamped
            # transaction), so delta accounting can start here: the
            # session's publish row-patches instead of rewriting.
            manager.mark_persisted(
                ("sqlite", self.location, name, generation)
            )
            session = WriteSession(
                self, name, document, manager, generation, lock,
                prevalidate=prevalidate,
            )
        except BaseException:
            lock.release()
            raise
        metrics.incr("service.write_sessions.opened")
        return session

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        with self._corpus_guard:
            if self._corpus is not None:
                self._corpus.close()  # executors only; the pool is ours
                self._corpus = None
        self._pool.close()

    def __enter__(self) -> "DocumentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["DocumentService", "ReadSession", "WriteSession"]
