"""Concurrent document service: WAL-mode sessions over a GODDAG store.

Many snapshot-isolated readers and one serialized writer per document;
see :mod:`repro.service.service` for the concurrency contract.
"""

from .service import DocumentService, ReadSession, WriteSession

__all__ = ["DocumentService", "ReadSession", "WriteSession"]
