"""Content-offset markup events — the unit of SACX parsing.

A :class:`MarkupEvent` pins a tag occurrence to the *character-content
offset* at which it happens (the position after stripping all markup).
:func:`content_events` converts one well-formed XML document into its
text plus event list; the SACX parser merges the event lists of many
documents over the same text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import WellFormednessError
from . import scanner as sc

#: Event kinds (shared with the scanner's tag kinds on purpose).
START = "start"
END = "end"
EMPTY = "empty"


@dataclass(frozen=True)
class MarkupEvent:
    """A tag occurrence at a content offset.

    ``seq`` preserves source order among events at the same offset —
    essential for zero-width elements and nested tags that open or
    close together.
    """

    kind: str
    tag: str
    offset: int
    attributes: tuple[tuple[str, str], ...] = ()
    seq: int = 0

    @property
    def attribute_dict(self) -> dict[str, str]:
        return dict(self.attributes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        marker = {"start": "<", "end": "</", "empty": "<~"}[self.kind]
        return f"{marker}{self.tag}@{self.offset}>"


@dataclass(frozen=True)
class ParsedDocument:
    """One hierarchy document reduced to text + events.

    ``events`` excludes the root element: the root is shared across the
    distributed document and is represented by ``root_tag``/``root_attributes``.
    """

    text: str
    root_tag: str
    root_attributes: tuple[tuple[str, str], ...]
    events: tuple[MarkupEvent, ...]


#: Item kinds yielded by :func:`iter_content_events`.
ROOT = "root"
TEXT = "text"
EVENT = "event"


def iter_content_events(
    tokens: Iterable[sc.Token],
) -> Iterator[tuple]:
    """Incrementally convert a token stream into content-offset items.

    Yields, in source order:

    - ``(ROOT, tag, attributes)`` exactly once, when the root element
      opens (before any other item);
    - ``(TEXT, chunk)`` for each run of character data inside the root
      (the content offset is the sum of prior chunk lengths);
    - ``(EVENT, MarkupEvent)`` for each non-root start/end/empty tag.

    This is the single source of truth for SACX well-formedness: matched
    tags, single root, no stray non-whitespace text outside the root.
    Comments and processing instructions are discarded; CDATA becomes
    plain text.  Errors surface lazily, when the offending token is
    pulled — which is what lets a streaming caller bound its memory.
    """
    stack: list[str] = []
    root_seen = False
    root_closed = False
    offset = 0
    seq = 0

    for token in tokens:
        if token.kind == sc.TEXT:
            if not stack:
                if token.data.strip():
                    raise WellFormednessError(
                        f"character data outside the root element at line "
                        f"{token.line}",
                        line=token.line, column=token.column,
                    )
                continue
            offset += len(token.data)
            yield (TEXT, token.data)
        elif token.kind == sc.START:
            if root_closed:
                raise WellFormednessError(
                    f"second root element <{token.name}> at line {token.line}",
                    line=token.line, column=token.column,
                )
            if not stack:
                root_seen = True
                yield (ROOT, token.name, token.attributes)
            else:
                seq += 1
                yield (
                    EVENT,
                    MarkupEvent(START, token.name, offset, token.attributes,
                                seq),
                )
            stack.append(token.name)
        elif token.kind == sc.END:
            if not stack:
                raise WellFormednessError(
                    f"stray end tag </{token.name}> at line {token.line}",
                    line=token.line, column=token.column,
                )
            open_tag = stack.pop()
            if open_tag != token.name:
                raise WellFormednessError(
                    f"end tag </{token.name}> does not match open "
                    f"<{open_tag}> at line {token.line}",
                    line=token.line, column=token.column,
                )
            if stack:
                seq += 1
                yield (EVENT, MarkupEvent(END, token.name, offset, (), seq))
            else:
                root_closed = True
        elif token.kind == sc.EMPTY:
            if not stack:
                raise WellFormednessError(
                    f"empty element <{token.name}/> outside the root at "
                    f"line {token.line}",
                    line=token.line, column=token.column,
                )
            seq += 1
            yield (
                EVENT,
                MarkupEvent(EMPTY, token.name, offset, token.attributes, seq),
            )
        # comments, PIs and DOCTYPE are ignored

    if stack:
        raise WellFormednessError(
            "unexpected end of document; unclosed: " + ", ".join(stack)
        )
    if not root_seen:
        raise WellFormednessError("document has no root element")


def content_events(source: str) -> ParsedDocument:
    """Parse one XML document into text + content-offset events.

    Enforces well-formedness (matched tags, single root, no stray
    non-whitespace text outside the root).  Comments and processing
    instructions are discarded; CDATA becomes plain text.  This is the
    materializing counterpart of :func:`iter_content_events`.
    """
    text_parts: list[str] = []
    events: list[MarkupEvent] = []
    root_tag: str | None = None
    root_attributes: tuple[tuple[str, str], ...] = ()

    for item in iter_content_events(sc.scan(source)):
        kind = item[0]
        if kind == TEXT:
            text_parts.append(item[1])
        elif kind == EVENT:
            events.append(item[1])
        else:  # ROOT
            root_tag, root_attributes = item[1], item[2]

    assert root_tag is not None  # iter_content_events raised otherwise
    return ParsedDocument(
        "".join(text_parts), root_tag, root_attributes, tuple(events)
    )


def events_to_spans(
    events: Iterable[MarkupEvent],
) -> list[tuple[str, int, int, dict[str, str]]]:
    """Pair start/end events into ``(tag, start, end, attrs)`` spans.

    Zero-width (EMPTY) events become zero-width spans.  Spans are
    returned in *source open order* (outer before inner), so rebuilding
    a document from them preserves the nesting of equal-span elements.
    Raises :class:`WellFormednessError` on unmatched events.
    """
    spans: list[tuple[int, tuple[str, int, int, dict[str, str]]]] = []
    stack: list[tuple[str, int, dict[str, str], int]] = []
    order = 0
    for event in events:
        if event.kind == START:
            stack.append((event.tag, event.offset, event.attribute_dict, order))
            order += 1
        elif event.kind == END:
            if not stack or stack[-1][0] != event.tag:
                raise WellFormednessError(
                    f"unmatched end event for <{event.tag}> at offset "
                    f"{event.offset}"
                )
            tag, start, attributes, opened = stack.pop()
            spans.append((opened, (tag, start, event.offset, attributes)))
        else:
            spans.append(
                (order,
                 (event.tag, event.offset, event.offset, event.attribute_dict))
            )
            order += 1
    if stack:
        raise WellFormednessError(
            "unclosed events: " + ", ".join(tag for tag, _, _, _ in stack)
        )
    spans.sort(key=lambda item: item[0])
    return [span for (_, span) in spans]
