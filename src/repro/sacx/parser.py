"""SACX — the simultaneous parser for concurrent XML.

The parser of the paper ("Parsing Concurrent XML", WIDM 2004): given a
*distributed document* — one well-formed XML document per hierarchy, all
carrying the same character content under the same root tag — SACX makes
a single merged pass over all markup, emitting unified events to a
SAX-style handler.  The default handler builds a GODDAG.

The merge order is ``(content offset, hierarchy rank, source sequence)``;
per-hierarchy source order is always preserved, so zero-width elements
and simultaneous opens/closes keep their meaning.
"""

from __future__ import annotations

from heapq import merge as heap_merge
from typing import Mapping, Sequence

from ..core.goddag import GoddagBuilder, GoddagDocument
from ..errors import TextMismatchError, WellFormednessError
from .events import EMPTY, END, START, MarkupEvent, ParsedDocument, content_events


class ConcurrentHandler:
    """SAX-style callback interface for concurrent markup.

    Subclass and override; the default implementations do nothing, so a
    handler can subscribe to only the events it cares about.
    """

    def start_document(self, text: str, root_tag: str,
                       root_attributes: Mapping[str, str]) -> None:
        """Called once, before any markup event."""

    def start_element(self, hierarchy: str, tag: str, offset: int,
                      attributes: Mapping[str, str]) -> None:
        """An opening tag of ``hierarchy`` at content ``offset``."""

    def end_element(self, hierarchy: str, tag: str, offset: int) -> None:
        """A closing tag of ``hierarchy`` at content ``offset``."""

    def empty_element(self, hierarchy: str, tag: str, offset: int,
                      attributes: Mapping[str, str]) -> None:
        """A zero-width element of ``hierarchy`` anchored at ``offset``."""

    def end_document(self) -> None:
        """Called once, after the last markup event."""


class GoddagHandler(ConcurrentHandler):
    """The default handler: builds a :class:`GoddagDocument`."""

    def __init__(self, hierarchies: Sequence[str]) -> None:
        self._hierarchy_names = list(hierarchies)
        self._builder: GoddagBuilder | None = None
        self.document: GoddagDocument | None = None

    def start_document(self, text, root_tag, root_attributes):
        self._builder = GoddagBuilder(text, root_tag)
        for name in self._hierarchy_names:
            self._builder.add_hierarchy(name)
        self._root_attributes = dict(root_attributes)

    def start_element(self, hierarchy, tag, offset, attributes):
        self._builder.start_element(hierarchy, tag, offset, attributes)

    def end_element(self, hierarchy, tag, offset):
        self._builder.end_element(hierarchy, tag, offset)

    def empty_element(self, hierarchy, tag, offset, attributes):
        self._builder.empty_element(hierarchy, tag, offset, attributes)

    def end_document(self):
        self.document = self._builder.build()
        self.document.root.attributes.update(self._root_attributes)


class EventCountingHandler(ConcurrentHandler):
    """A trivial handler used by tests and benchmarks: counts events."""

    def __init__(self) -> None:
        self.starts = 0
        self.ends = 0
        self.empties = 0
        self.text_length = 0

    def start_document(self, text, root_tag, root_attributes):
        self.text_length = len(text)

    def start_element(self, hierarchy, tag, offset, attributes):
        self.starts += 1

    def end_element(self, hierarchy, tag, offset):
        self.ends += 1

    def empty_element(self, hierarchy, tag, offset, attributes):
        self.empties += 1


class SACXParser:
    """Parse a distributed document through a :class:`ConcurrentHandler`."""

    def __init__(self, handler: ConcurrentHandler | None = None) -> None:
        self.handler = handler

    def parse(
        self, sources: Mapping[str, str]
    ) -> GoddagDocument | None:
        """Parse ``{hierarchy_name: xml_source}``.

        With no explicit handler a :class:`GoddagHandler` is used and
        the built document returned; with a custom handler the return
        value is None and the handler holds the result.
        """
        if not sources:
            raise WellFormednessError("a distributed document needs at least one part")
        parsed = self._scan_parts(sources)
        handler = self.handler
        owns_handler = handler is None
        if owns_handler:
            handler = GoddagHandler(list(sources))
        reference = next(iter(parsed.values()))
        handler.start_document(
            reference.text, reference.root_tag, dict(reference.root_attributes)
        )
        for hierarchy, event in self._merged_events(parsed):
            if event.kind == START:
                handler.start_element(
                    hierarchy, event.tag, event.offset, event.attribute_dict
                )
            elif event.kind == END:
                handler.end_element(hierarchy, event.tag, event.offset)
            else:
                handler.empty_element(
                    hierarchy, event.tag, event.offset, event.attribute_dict
                )
        handler.end_document()
        if owns_handler:
            return handler.document
        return None

    # -- internals ---------------------------------------------------------------

    def _scan_parts(self, sources: Mapping[str, str]) -> dict[str, ParsedDocument]:
        parsed: dict[str, ParsedDocument] = {}
        reference: ParsedDocument | None = None
        reference_name = ""
        for name, source in sources.items():
            document = content_events(source)
            if reference is None:
                reference, reference_name = document, name
            else:
                self._check_consistency(reference_name, reference, name, document)
            parsed[name] = document
        return parsed

    @staticmethod
    def _check_consistency(
        ref_name: str, ref: ParsedDocument, name: str, doc: ParsedDocument
    ) -> None:
        if doc.root_tag != ref.root_tag:
            raise TextMismatchError(
                f"root tags differ: {ref_name!r} has <{ref.root_tag}>, "
                f"{name!r} has <{doc.root_tag}>"
            )
        if doc.text != ref.text:
            at = next(
                (i for i, (a, b) in enumerate(zip(ref.text, doc.text)) if a != b),
                min(len(ref.text), len(doc.text)),
            )
            window = slice(max(0, at - 10), at + 10)
            raise TextMismatchError(
                f"text content differs between {ref_name!r} and {name!r} "
                f"at offset {at}: {ref.text[window]!r} vs {doc.text[window]!r}",
                offset=at,
                expected=ref.text[window],
                found=doc.text[window],
            )

    @staticmethod
    def _merged_events(
        parsed: Mapping[str, ParsedDocument],
    ) -> "list[tuple[str, MarkupEvent]]":
        streams = []
        for rank, (name, document) in enumerate(parsed.items()):
            streams.append(
                [(event.offset, rank, event.seq, name, event)
                 for event in document.events]
            )
        merged = heap_merge(*streams)
        return [(name, event) for (_, _, _, name, event) in merged]


def parse_concurrent(sources: Mapping[str, str]) -> GoddagDocument:
    """One-call SACX parse of a distributed document into a GODDAG."""
    return SACXParser().parse(sources)
