"""Import driver: standoff annotations.

Standoff markup stores the text once and the annotations separately as
offset ranges — the representation of choice for annotation pipelines
and the closest relative of the GODDAG's own span model.  The format is
JSON:

.. code-block:: json

    {
      "text": "sing a song of sixpence",
      "root": {"tag": "r", "attributes": {}},
      "hierarchies": [
        {"name": "physical",
         "annotations": [
           {"tag": "line", "start": 0, "end": 11, "attributes": {}}
         ]}
      ]
    }

A *flat* variant — just a text and one list of annotations — is also
accepted; hierarchies are then derived by conflict auto-partition.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from ..core.goddag import GoddagBuilder, GoddagDocument
from ..core.hierarchy import ConcurrentSchema
from ..errors import SerializationError


def parse_standoff(source: str | Mapping) -> GoddagDocument:
    """Build a GODDAG from a standoff JSON document (string or dict)."""
    data = json.loads(source) if isinstance(source, str) else dict(source)
    try:
        text = data["text"]
    except KeyError:
        raise SerializationError("standoff document lacks a 'text' field") from None
    root = data.get("root", {})
    root_tag = root.get("tag", "r")
    builder = GoddagBuilder(text, root_tag)
    for block in data.get("hierarchies", []):
        try:
            name = block["name"]
        except (KeyError, TypeError):
            raise SerializationError(
                "every hierarchy block needs a 'name'"
            ) from None
        builder.add_hierarchy(name)
        for annotation in block.get("annotations", []):
            builder.add_annotation(
                name,
                annotation["tag"],
                int(annotation["start"]),
                int(annotation["end"]),
                annotation.get("attributes", {}),
            )
    document = builder.build()
    document.root.attributes.update(root.get("attributes", {}))
    return document


def parse_flat_standoff(
    text: str,
    annotations: Iterable[tuple],
    schema: ConcurrentSchema | None = None,
    root_tag: str = "r",
) -> GoddagDocument:
    """Build a GODDAG from a soup of ``(tag, start, end[, attrs])``.

    Without a schema, hierarchies are derived by greedy conflict
    auto-partition — the "I have annotations, give me a consistent
    concurrent document" entry point.
    """
    normalized: list[tuple[str, int, int, dict[str, str]]] = []
    for annotation in annotations:
        if len(annotation) == 3:
            tag, start, end = annotation
            attributes: dict[str, str] = {}
        else:
            tag, start, end, attributes = annotation
        normalized.append((tag, int(start), int(end), dict(attributes)))

    if schema is None:
        schema = ConcurrentSchema.from_annotations(
            [(tag, start, end) for tag, start, end, _ in normalized]
        )
    builder = GoddagBuilder(text, root_tag)
    assignments: dict[str, str] = {}
    for hierarchy in schema:
        builder.add_hierarchy(hierarchy.name, dtd=hierarchy.dtd)
        for tag in hierarchy.tags:
            assignments[tag] = hierarchy.name
    fallback: str | None = None
    for tag, start, end, attributes in normalized:
        owner = assignments.get(tag) or schema.owner_of(tag)
        if owner is None:
            if fallback is None:
                fallback = "h-unassigned"
                builder.add_hierarchy(fallback)
            owner = fallback
        builder.add_annotation(owner, tag, start, end, attributes)
    return builder.build()


def standoff_dict(document: GoddagDocument) -> dict:
    """The standoff (JSON-ready) dictionary of a GODDAG.

    The canonical inverse of :func:`parse_standoff`; also used by the
    storage layer as its interchange form.
    """
    hierarchies = []
    for name in document.hierarchy_names():
        annotations = [
            {
                "tag": element.tag,
                "start": element.start,
                "end": element.end,
                "attributes": dict(element.attributes),
            }
            for element in document.elements(hierarchy=name)
        ]
        hierarchies.append({"name": name, "annotations": annotations})
    return {
        "text": document.text,
        "root": {
            "tag": document.root.tag,
            "attributes": dict(document.root.attributes),
        },
        "hierarchies": hierarchies,
    }


def export_standoff(document: GoddagDocument, indent: int | None = None) -> str:
    """Serialize a GODDAG to standoff JSON."""
    return json.dumps(standoff_dict(document), indent=indent, ensure_ascii=False)
