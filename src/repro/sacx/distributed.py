"""Import driver: distributed documents.

The native representation of the framework: one well-formed XML
document per hierarchy, all with the same root tag and the same
character content.  This is a thin convenience layer over
:class:`repro.sacx.parser.SACXParser`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.goddag import GoddagDocument
from .parser import SACXParser


def parse_distributed(sources: Mapping[str, str]) -> GoddagDocument:
    """Parse ``{hierarchy_name: xml_source}`` into a GODDAG."""
    return SACXParser().parse(sources)


def parse_distributed_list(
    sources: Sequence[str], name_format: str = "h{index}"
) -> GoddagDocument:
    """Parse a list of documents, naming hierarchies ``h0, h1, ...``."""
    named = {
        name_format.format(index=index): source
        for index, source in enumerate(sources)
    }
    return parse_distributed(named)
