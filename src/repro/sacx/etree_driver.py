"""Cross-check driver: content events via the stdlib ElementTree.

The from-scratch scanner is the production path (it tracks offsets
directly); this driver recomputes the same text + events by walking an
``xml.etree`` tree and accumulating ``text``/``tail`` strings.  Tests
compare both paths on every corpus document — a cheap, independent
implementation of the same specification.

Limitations inherited from ElementTree: comments/PIs are dropped (same
as our scanner's event layer) and namespace prefixes are expanded;
documents in this framework do not use namespaces.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from ..errors import WellFormednessError
from .events import EMPTY, END, START, MarkupEvent, ParsedDocument


def content_events_etree(source: str) -> ParsedDocument:
    """Equivalent of :func:`repro.sacx.events.content_events` via ElementTree."""
    try:
        root = ET.fromstring(source)
    except ET.ParseError as exc:
        raise WellFormednessError(f"ElementTree rejected the document: {exc}") from exc

    text_parts: list[str] = []
    events: list[MarkupEvent] = []
    seq = 0

    def emit(kind: str, tag: str, offset: int,
             attributes: tuple[tuple[str, str], ...] = ()) -> None:
        nonlocal seq
        seq += 1
        events.append(MarkupEvent(kind, tag, offset, attributes, seq))

    def walk(element: ET.Element) -> None:
        offset = sum(len(part) for part in text_parts)
        attributes = tuple(sorted(element.attrib.items()))
        has_children = len(element) > 0
        has_text = bool(element.text)
        if not has_children and not has_text:
            emit(EMPTY, element.tag, offset, attributes)
        else:
            emit(START, element.tag, offset, attributes)
            if element.text:
                text_parts.append(element.text)
            for child in element:
                walk(child)
                if child.tail:
                    text_parts.append(child.tail)
            emit(END, element.tag, sum(len(part) for part in text_parts))

    if root.text:
        text_parts.append(root.text)
    for child in root:
        walk(child)
        if child.tail:
            text_parts.append(child.tail)

    return ParsedDocument(
        "".join(text_parts),
        root.tag,
        tuple(sorted(root.attrib.items())),
        tuple(events),
    )
