"""Reserved attribute names shared by import drivers and exporters.

Single-document representations of concurrent markup must encode, inside
one XML tree, information that the GODDAG keeps structurally: which
hierarchy an element belongs to, which fragments form one logical
element, which empty elements are really paired range markers.  The
framework reserves the ``sacx-`` attribute prefix for this bookkeeping;
importers strip these attributes, exporters add them.
"""

#: Hierarchy an element belongs to (all single-document representations).
HIERARCHY_ATTR = "sacx-h"

#: Fragmentation: fragment-group id; fragments with equal (tag, fid) merge.
FRAGMENT_ID_ATTR = "sacx-fid"

#: Fragmentation: position of the fragment in its group (I/M/F, TEI-style).
FRAGMENT_PART_ATTR = "sacx-part"

#: Milestones: marker kind, ``start`` or ``end``.
MILESTONE_KIND_ATTR = "sacx-ms"

#: Milestones: pair id connecting a start marker to its end marker.
MILESTONE_ID_ATTR = "sacx-mid"

#: All reserved names (importers strip these from user-visible attributes).
RESERVED = frozenset({
    HIERARCHY_ATTR,
    FRAGMENT_ID_ATTR,
    FRAGMENT_PART_ATTR,
    MILESTONE_KIND_ATTR,
    MILESTONE_ID_ATTR,
})


def strip_reserved(attributes: dict[str, str]) -> dict[str, str]:
    """Remove the ``sacx-`` bookkeeping attributes."""
    return {
        name: value for name, value in attributes.items() if name not in RESERVED
    }
