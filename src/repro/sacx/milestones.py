"""Import driver: the TEI *milestone* workaround.

Milestones store overlapping markup by demoting conflicting elements to
pairs of empty marker elements: ``<tag sacx-ms="start" sacx-mid="7"/>``
... ``<tag sacx-ms="end" sacx-mid="7"/>``.  The tree structure of the
remaining ("inline") elements stays intact.  This driver re-promotes the
pairs to real elements, and also handles the *delimiter* style of
milestone (TEI ``<pb/>``/``<lb/>``: a boundary marker at which a new
unit begins) via :func:`segment_by_delimiters`.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.goddag import GoddagBuilder, GoddagDocument
from ..core.hierarchy import ConcurrentSchema
from ..errors import SerializationError
from .events import EMPTY, content_events
from .fragmentation import build_from_records, _SpanRecord
from .reserved import (
    HIERARCHY_ATTR,
    MILESTONE_ID_ATTR,
    MILESTONE_KIND_ATTR,
    strip_reserved,
)


def parse_milestones(
    source: str, schema: ConcurrentSchema | None = None
) -> GoddagDocument:
    """Rebuild a GODDAG from a milestone single-document encoding."""
    parsed = content_events(source)
    records = _records_from_events(parsed.events)
    return build_from_records(
        parsed.text, parsed.root_tag, dict(parsed.root_attributes),
        records, schema,
    )


def _records_from_events(events) -> list[_SpanRecord]:
    # Records carry their *open order* so equal-span nesting survives
    # the round trip (records are emitted when ranges close, which is
    # inner-first for equal spans).
    ordered: list[tuple[int, _SpanRecord]] = []
    stack: list[tuple[str, int, dict[str, str], int]] = []
    # Open milestone ranges: explicit ids, plus per-tag stacks for pairs
    # that rely on proper nesting instead of ids.
    open_by_id: dict[tuple[str, str], tuple[int, dict[str, str], int]] = {}
    open_by_tag: dict[str, list[tuple[int, dict[str, str], int]]] = defaultdict(list)
    order = 0

    for event in events:
        attributes = event.attribute_dict
        kind_attr = attributes.get(MILESTONE_KIND_ATTR)
        if event.kind == EMPTY and kind_attr is not None:
            mid = attributes.get(MILESTONE_ID_ATTR)
            if kind_attr == "start":
                order += 1
                if mid is not None:
                    key = (event.tag, mid)
                    if key in open_by_id:
                        raise SerializationError(
                            f"duplicate milestone start for <{event.tag}> "
                            f"id {mid!r}"
                        )
                    open_by_id[key] = (event.offset, attributes, order)
                else:
                    open_by_tag[event.tag].append(
                        (event.offset, attributes, order)
                    )
            elif kind_attr == "end":
                if mid is not None:
                    key = (event.tag, mid)
                    if key not in open_by_id:
                        raise SerializationError(
                            f"milestone end for <{event.tag}> id {mid!r} "
                            f"without a start"
                        )
                    start, start_attrs, opened = open_by_id.pop(key)
                else:
                    if not open_by_tag[event.tag]:
                        raise SerializationError(
                            f"milestone end for <{event.tag}> without a start"
                        )
                    start, start_attrs, opened = open_by_tag[event.tag].pop()
                ordered.append((opened, (
                    event.tag, start, event.offset,
                    strip_reserved(start_attrs),
                    start_attrs.get(HIERARCHY_ATTR),
                )))
            else:
                raise SerializationError(
                    f"unknown milestone kind {kind_attr!r} on <{event.tag}>"
                )
            continue
        # Ordinary inline markup.
        if event.kind == "start":
            order += 1
            stack.append((event.tag, event.offset, attributes, order))
        elif event.kind == "end":
            tag, start, attrs, opened = stack.pop()
            ordered.append((opened, (
                tag, start, event.offset,
                strip_reserved(attrs), attrs.get(HIERARCHY_ATTR),
            )))
        else:  # genuine empty element
            order += 1
            ordered.append((order, (
                event.tag, event.offset, event.offset,
                strip_reserved(attributes), attributes.get(HIERARCHY_ATTR),
            )))

    leftovers = list(open_by_id) + [
        tag for tag, opens in open_by_tag.items() if opens
    ]
    if leftovers:
        raise SerializationError(
            f"unterminated milestone ranges: {leftovers!r}"
        )
    ordered.sort(key=lambda item: item[0])
    return [record for (_, record) in ordered]


def segment_by_delimiters(
    document: GoddagDocument,
    milestone_tag: str,
    unit_tag: str,
    target_hierarchy: str,
    include_leading: bool = True,
) -> list:
    """Convert delimiter milestones into spanning unit elements.

    TEI page/line breaks (``<pb/>``, ``<lb/>``) mark where a new unit
    *begins*.  For every milestone ``<milestone_tag/>`` anchored at
    offset ``p`` this inserts a ``<unit_tag>`` element from ``p`` to the
    next milestone (or the end of text) into ``target_hierarchy``, which
    must already exist.  With ``include_leading`` the text before the
    first milestone becomes a unit as well.  Milestone attributes are
    copied onto their unit.  Returns the new elements.
    """
    anchors = [
        (element.start, dict(element.attributes))
        for element in document.elements(tag=milestone_tag)
        if element.is_empty
    ]
    anchors.sort(key=lambda item: item[0])
    created = []
    if not anchors:
        return created
    if include_leading and anchors[0][0] > 0:
        anchors.insert(0, (0, {}))
    for (start, attributes), (end, _) in zip(anchors, anchors[1:]):
        created.append(
            document.insert_element(target_hierarchy, unit_tag, start, end,
                                    attributes)
        )
    last_start, last_attributes = anchors[-1]
    if last_start < document.length:
        created.append(
            document.insert_element(
                target_hierarchy, unit_tag, last_start, document.length,
                last_attributes,
            )
        )
    return created
