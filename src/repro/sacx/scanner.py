"""An offset-tracking XML scanner, written from scratch.

SACX needs to know, for every tag, the *character-content offset* at
which it occurs — the position in the text obtained by stripping all
markup.  Neither ElementTree nor SAX expose this reliably, so the
framework ships its own tokenizer.  It covers the XML subset that
document-centric editions use: elements, attributes, character data,
the five predefined entities plus numeric character references, CDATA
sections, comments, processing instructions and a skipped DOCTYPE.

The scanner reports *source* positions (line/column) for diagnostics;
the event layer (:mod:`repro.sacx.events`) converts the token stream
into content-offset events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .._util import is_name_char, is_name_start_char, unescape
from ..errors import WellFormednessError

#: Token kinds.
START = "start"
END = "end"
EMPTY = "empty"
TEXT = "text"
COMMENT = "comment"
PI = "pi"
DOCTYPE = "doctype"


@dataclass(frozen=True)
class Token:
    """One lexical unit of the XML source."""

    kind: str
    name: str = ""
    data: str = ""
    attributes: tuple[tuple[str, str], ...] = ()
    line: int = 1
    column: int = 1

    @property
    def attribute_dict(self) -> dict[str, str]:
        return dict(self.attributes)


class XmlScanner:
    """Tokenize an XML source string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- error & movement helpers ------------------------------------------------

    def _error(self, message: str) -> WellFormednessError:
        return WellFormednessError(
            f"{message} at line {self.line}, column {self.column}",
            line=self.line, column=self.column, offset=self.pos,
        )

    def _advance(self, count: int) -> None:
        chunk = self.source[self.pos : self.pos + count]
        newlines = chunk.count("\n")
        if newlines:
            self.line += newlines
            self.column = count - chunk.rfind("\n")
        else:
            self.column += count
        self.pos += count

    def _at_end(self) -> bool:
        return self.pos >= len(self.source)

    def _peek(self, width: int = 1) -> str:
        return self.source[self.pos : self.pos + width]

    def _find(self, literal: str, label: str) -> int:
        index = self.source.find(literal, self.pos)
        if index == -1:
            raise self._error(f"unterminated {label}")
        return index

    # -- tokenization ----------------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until the end of the source."""
        while not self._at_end():
            if self._peek() == "<":
                yield from self._markup()
            else:
                yield self._text()

    def _text(self) -> Token:
        line, column = self.line, self.column
        end = self.source.find("<", self.pos)
        if end == -1:
            end = len(self.source)
        raw = self.source[self.pos : end]
        self._advance(end - self.pos)
        return Token(TEXT, data=unescape(raw), line=line, column=column)

    def _markup(self) -> Iterator[Token]:
        line, column = self.line, self.column
        if self._peek(4) == "<!--":
            end = self._find("-->", "comment")
            data = self.source[self.pos + 4 : end]
            self._advance(end + 3 - self.pos)
            yield Token(COMMENT, data=data, line=line, column=column)
            return
        if self._peek(9) == "<![CDATA[":
            end = self._find("]]>", "CDATA section")
            data = self.source[self.pos + 9 : end]
            self._advance(end + 3 - self.pos)
            yield Token(TEXT, data=data, line=line, column=column)
            return
        if self._peek(2) == "<?":
            end = self._find("?>", "processing instruction")
            data = self.source[self.pos + 2 : end]
            self._advance(end + 2 - self.pos)
            yield Token(PI, data=data, line=line, column=column)
            return
        if self._peek(9).upper() == "<!DOCTYPE":
            yield self._doctype(line, column)
            return
        if self._peek(2) == "</":
            self._advance(2)
            name = self._name()
            self._skip_ws()
            if self._peek() != ">":
                raise self._error(f"malformed end tag </{name}")
            self._advance(1)
            yield Token(END, name=name, line=line, column=column)
            return
        # start or empty-element tag
        self._advance(1)
        name = self._name()
        attributes = self._attributes()
        if self._peek(2) == "/>":
            self._advance(2)
            yield Token(EMPTY, name=name, attributes=attributes,
                        line=line, column=column)
            return
        if self._peek() == ">":
            self._advance(1)
            yield Token(START, name=name, attributes=attributes,
                        line=line, column=column)
            return
        raise self._error(f"malformed start tag <{name}")

    def _doctype(self, line: int, column: int) -> Token:
        depth = 0
        start = self.pos
        while not self._at_end():
            ch = self._peek()
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth == 0:
                data = self.source[start : self.pos + 1]
                self._advance(1)
                return Token(DOCTYPE, data=data, line=line, column=column)
            self._advance(1)
        raise self._error("unterminated DOCTYPE")

    def _name(self) -> str:
        if self._at_end() or not is_name_start_char(self._peek()):
            raise self._error("expected a name")
        start = self.pos
        while not self._at_end() and is_name_char(self._peek()):
            self._advance(1)
        return self.source[start : self.pos]

    def _skip_ws(self) -> None:
        while not self._at_end() and self._peek().isspace():
            self._advance(1)

    def _attributes(self) -> tuple[tuple[str, str], ...]:
        attributes: list[tuple[str, str]] = []
        seen: set[str] = set()
        while True:
            self._skip_ws()
            if self._at_end():
                raise self._error("unterminated start tag")
            if self._peek() in (">", "/"):
                return tuple(attributes)
            name = self._name()
            self._skip_ws()
            if self._peek() != "=":
                raise self._error(f"attribute {name!r} missing '='")
            self._advance(1)
            self._skip_ws()
            quote = self._peek()
            if quote not in ("'", '"'):
                raise self._error(f"attribute {name!r} value must be quoted")
            self._advance(1)
            end = self._find(quote, f"attribute {name!r} value")
            raw = self.source[self.pos : end]
            self._advance(end + 1 - self.pos)
            if name in seen:
                raise self._error(f"duplicate attribute {name!r}")
            seen.add(name)
            attributes.append((name, unescape(raw)))


def scan(source: str) -> Iterator[Token]:
    """Convenience wrapper: tokenize ``source``."""
    return XmlScanner(source).tokens()


#: Minimum lookahead the markup dispatcher needs before it can decide a
#: construct kind: ``<![CDATA[`` and ``<!DOCTYPE`` are both 9 chars.
_DISPATCH_LOOKAHEAD = 9

#: Default incremental read size, in characters.
DEFAULT_CHUNK_CHARS = 1 << 16

#: When a text run fills the buffer past this size with no markup in
#: sight, the streaming scanner emits it in pieces (splitting only at
#: entity-safe points) instead of buffering it whole.
_TEXT_FLUSH_CHARS = 1 << 16


def iter_source_chunks(source, chunk_chars: int = DEFAULT_CHUNK_CHARS):
    """Normalize a source into an iterator of string chunks.

    Accepts a ``str`` (sliced), an open text-mode file object (anything
    with ``read(n)``), an ``os.PathLike`` (opened and closed here), or
    any iterable of string chunks (passed through).
    """
    if isinstance(source, str):
        def _slices() -> Iterator[str]:
            for at in range(0, len(source), chunk_chars):
                yield source[at : at + chunk_chars]
        return _slices()
    read = getattr(source, "read", None)
    if callable(read):
        def _reads() -> Iterator[str]:
            while True:
                chunk = read(chunk_chars)
                if not chunk:
                    return
                yield chunk
        return _reads()
    fspath = getattr(source, "__fspath__", None)
    if callable(fspath):
        def _file() -> Iterator[str]:
            with open(fspath(), "r", encoding="utf-8") as handle:
                while True:
                    chunk = handle.read(chunk_chars)
                    if not chunk:
                        return
                    yield chunk
        return _file()
    return iter(source)


class StreamingXmlScanner(XmlScanner):
    """Tokenize XML arriving in chunks, holding only a sliding buffer.

    The batch :class:`XmlScanner` is reused wholesale: its methods see
    ``self.source`` as the *current window* of the input.  Around each
    token this class (1) guarantees enough lookahead for the markup
    dispatcher, (2) snapshots ``(pos, line, column)`` and, when a token
    raises :class:`WellFormednessError` while more input exists, extends
    the window and retries — truncation errors ("unterminated comment",
    "unterminated start tag", …) are indistinguishable from real ones
    until end of input, so every error is retried until the input is
    exhausted; and (3) drops the consumed prefix of the window.

    Character data is only emitted once the following ``<`` (or end of
    input) is in the window, so entities are never split mid-reference —
    except that a pathological markup-free run longer than the flush
    limit is emitted in pieces, split just before the last ``&`` so the
    same guarantee holds piecewise.

    Note the retry rule's memory caveat: input that is *actually*
    malformed keeps the buffer growing until the input ends and the
    error becomes final.  Well-formed input is scanned in bounded
    memory regardless of document size.
    """

    def __init__(self, chunks, chunk_chars: int = DEFAULT_CHUNK_CHARS) -> None:
        super().__init__("")
        self._chunks = iter_source_chunks(chunks, chunk_chars)
        self._eof = False

    def _fill(self) -> bool:
        """Append one more chunk to the window; False once input ends."""
        if self._eof:
            return False
        try:
            chunk = next(self._chunks)
        except StopIteration:
            self._eof = True
            return False
        self.source += chunk
        return True

    def _compact(self) -> None:
        """Drop the consumed window prefix (line/column keep counting)."""
        if self.pos:
            self.source = self.source[self.pos :]
            self.pos = 0

    def tokens(self) -> Iterator[Token]:
        while True:
            while (not self._eof
                   and len(self.source) - self.pos < _DISPATCH_LOOKAHEAD):
                self._fill()
            if self._at_end():
                if self._eof:
                    return
                continue
            if self._peek() == "<":
                snapshot = (self.pos, self.line, self.column)
                try:
                    batch = list(self._markup())
                except WellFormednessError:
                    if self._fill():
                        self.pos, self.line, self.column = snapshot
                        continue
                    raise
                yield from batch
            else:
                token = self._buffered_text()
                if token is None:
                    continue
                yield token
            self._compact()

    def _buffered_text(self) -> Token | None:
        """Emit character data only once its end is certain.

        Returns ``None`` when more input must be buffered first.
        """
        if self.source.find("<", self.pos) == -1 and not self._eof:
            if len(self.source) - self.pos > _TEXT_FLUSH_CHARS:
                # No markup in a very long run: flush the entity-safe
                # prefix (up to the last '&', or everything when the
                # window holds no '&') rather than buffer it all.
                split = self.source.rfind("&", self.pos)
                if split == -1:
                    split = len(self.source)
                if split > self.pos:
                    line, column = self.line, self.column
                    raw = self.source[self.pos : split]
                    self._advance(split - self.pos)
                    return Token(TEXT, data=unescape(raw),
                                 line=line, column=column)
            self._fill()
            return None
        return self._text()
