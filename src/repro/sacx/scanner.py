"""An offset-tracking XML scanner, written from scratch.

SACX needs to know, for every tag, the *character-content offset* at
which it occurs — the position in the text obtained by stripping all
markup.  Neither ElementTree nor SAX expose this reliably, so the
framework ships its own tokenizer.  It covers the XML subset that
document-centric editions use: elements, attributes, character data,
the five predefined entities plus numeric character references, CDATA
sections, comments, processing instructions and a skipped DOCTYPE.

The scanner reports *source* positions (line/column) for diagnostics;
the event layer (:mod:`repro.sacx.events`) converts the token stream
into content-offset events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .._util import is_name_char, is_name_start_char, unescape
from ..errors import WellFormednessError

#: Token kinds.
START = "start"
END = "end"
EMPTY = "empty"
TEXT = "text"
COMMENT = "comment"
PI = "pi"
DOCTYPE = "doctype"


@dataclass(frozen=True)
class Token:
    """One lexical unit of the XML source."""

    kind: str
    name: str = ""
    data: str = ""
    attributes: tuple[tuple[str, str], ...] = ()
    line: int = 1
    column: int = 1

    @property
    def attribute_dict(self) -> dict[str, str]:
        return dict(self.attributes)


class XmlScanner:
    """Tokenize an XML source string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- error & movement helpers ------------------------------------------------

    def _error(self, message: str) -> WellFormednessError:
        return WellFormednessError(
            f"{message} at line {self.line}, column {self.column}",
            line=self.line, column=self.column, offset=self.pos,
        )

    def _advance(self, count: int) -> None:
        chunk = self.source[self.pos : self.pos + count]
        newlines = chunk.count("\n")
        if newlines:
            self.line += newlines
            self.column = count - chunk.rfind("\n")
        else:
            self.column += count
        self.pos += count

    def _at_end(self) -> bool:
        return self.pos >= len(self.source)

    def _peek(self, width: int = 1) -> str:
        return self.source[self.pos : self.pos + width]

    def _find(self, literal: str, label: str) -> int:
        index = self.source.find(literal, self.pos)
        if index == -1:
            raise self._error(f"unterminated {label}")
        return index

    # -- tokenization ----------------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until the end of the source."""
        while not self._at_end():
            if self._peek() == "<":
                yield from self._markup()
            else:
                yield self._text()

    def _text(self) -> Token:
        line, column = self.line, self.column
        end = self.source.find("<", self.pos)
        if end == -1:
            end = len(self.source)
        raw = self.source[self.pos : end]
        self._advance(end - self.pos)
        return Token(TEXT, data=unescape(raw), line=line, column=column)

    def _markup(self) -> Iterator[Token]:
        line, column = self.line, self.column
        if self._peek(4) == "<!--":
            end = self._find("-->", "comment")
            data = self.source[self.pos + 4 : end]
            self._advance(end + 3 - self.pos)
            yield Token(COMMENT, data=data, line=line, column=column)
            return
        if self._peek(9) == "<![CDATA[":
            end = self._find("]]>", "CDATA section")
            data = self.source[self.pos + 9 : end]
            self._advance(end + 3 - self.pos)
            yield Token(TEXT, data=data, line=line, column=column)
            return
        if self._peek(2) == "<?":
            end = self._find("?>", "processing instruction")
            data = self.source[self.pos + 2 : end]
            self._advance(end + 2 - self.pos)
            yield Token(PI, data=data, line=line, column=column)
            return
        if self._peek(9).upper() == "<!DOCTYPE":
            yield self._doctype(line, column)
            return
        if self._peek(2) == "</":
            self._advance(2)
            name = self._name()
            self._skip_ws()
            if self._peek() != ">":
                raise self._error(f"malformed end tag </{name}")
            self._advance(1)
            yield Token(END, name=name, line=line, column=column)
            return
        # start or empty-element tag
        self._advance(1)
        name = self._name()
        attributes = self._attributes()
        if self._peek(2) == "/>":
            self._advance(2)
            yield Token(EMPTY, name=name, attributes=attributes,
                        line=line, column=column)
            return
        if self._peek() == ">":
            self._advance(1)
            yield Token(START, name=name, attributes=attributes,
                        line=line, column=column)
            return
        raise self._error(f"malformed start tag <{name}")

    def _doctype(self, line: int, column: int) -> Token:
        depth = 0
        start = self.pos
        while not self._at_end():
            ch = self._peek()
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth == 0:
                data = self.source[start : self.pos + 1]
                self._advance(1)
                return Token(DOCTYPE, data=data, line=line, column=column)
            self._advance(1)
        raise self._error("unterminated DOCTYPE")

    def _name(self) -> str:
        if self._at_end() or not is_name_start_char(self._peek()):
            raise self._error("expected a name")
        start = self.pos
        while not self._at_end() and is_name_char(self._peek()):
            self._advance(1)
        return self.source[start : self.pos]

    def _skip_ws(self) -> None:
        while not self._at_end() and self._peek().isspace():
            self._advance(1)

    def _attributes(self) -> tuple[tuple[str, str], ...]:
        attributes: list[tuple[str, str]] = []
        seen: set[str] = set()
        while True:
            self._skip_ws()
            if self._at_end():
                raise self._error("unterminated start tag")
            if self._peek() in (">", "/"):
                return tuple(attributes)
            name = self._name()
            self._skip_ws()
            if self._peek() != "=":
                raise self._error(f"attribute {name!r} missing '='")
            self._advance(1)
            self._skip_ws()
            quote = self._peek()
            if quote not in ("'", '"'):
                raise self._error(f"attribute {name!r} value must be quoted")
            self._advance(1)
            end = self._find(quote, f"attribute {name!r} value")
            raw = self.source[self.pos : end]
            self._advance(end + 1 - self.pos)
            if name in seen:
                raise self._error(f"duplicate attribute {name!r}")
            seen.add(name)
            attributes.append((name, unescape(raw)))


def scan(source: str) -> Iterator[Token]:
    """Convenience wrapper: tokenize ``source``."""
    return XmlScanner(source).tokens()
