"""SACX: parsing concurrent XML into GODDAGs.

The package mirrors the parsing half of the paper's framework: an
offset-tracking scanner, a content-event layer, the SACX merge parser
with its SAX-style handler interface, and one import driver per
supported representation of concurrent markup (distributed documents,
TEI fragmentation, TEI milestones, standoff annotations).
"""

from .distributed import parse_distributed, parse_distributed_list
from .events import (
    EMPTY,
    END,
    START,
    MarkupEvent,
    ParsedDocument,
    content_events,
    events_to_spans,
)
from .etree_driver import content_events_etree
from .fragmentation import merge_fragments, parse_fragmentation
from .milestones import parse_milestones, segment_by_delimiters
from .parser import (
    ConcurrentHandler,
    EventCountingHandler,
    GoddagHandler,
    SACXParser,
    parse_concurrent,
)
from .reserved import (
    FRAGMENT_ID_ATTR,
    FRAGMENT_PART_ATTR,
    HIERARCHY_ATTR,
    MILESTONE_ID_ATTR,
    MILESTONE_KIND_ATTR,
    RESERVED,
    strip_reserved,
)
from .scanner import Token, XmlScanner, scan
from .standoff import (
    export_standoff,
    parse_flat_standoff,
    parse_standoff,
    standoff_dict,
)

__all__ = [
    "ConcurrentHandler",
    "EMPTY",
    "END",
    "EventCountingHandler",
    "FRAGMENT_ID_ATTR",
    "FRAGMENT_PART_ATTR",
    "GoddagHandler",
    "HIERARCHY_ATTR",
    "MILESTONE_ID_ATTR",
    "MILESTONE_KIND_ATTR",
    "MarkupEvent",
    "ParsedDocument",
    "RESERVED",
    "SACXParser",
    "START",
    "Token",
    "XmlScanner",
    "content_events",
    "content_events_etree",
    "events_to_spans",
    "export_standoff",
    "merge_fragments",
    "parse_concurrent",
    "parse_distributed",
    "parse_distributed_list",
    "parse_flat_standoff",
    "parse_fragmentation",
    "parse_milestones",
    "parse_standoff",
    "scan",
    "segment_by_delimiters",
    "standoff_dict",
    "strip_reserved",
]
