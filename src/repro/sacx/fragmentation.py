"""Import driver: the TEI *fragmentation* workaround.

Fragmentation stores overlapping markup in one well-formed document by
splitting each conflicting element into fragments and gluing the pieces
back together with an id attribute.  The TEI Guidelines (P4, §31) call
this "partial elements"; this driver reverses it:

* elements carrying ``sacx-fid`` are fragments — all fragments with the
  same ``(tag, fid)`` merge into one logical element spanning from the
  first fragment's start to the last fragment's end;
* other elements import unchanged;
* elements route to hierarchies via an explicit
  :class:`~repro.core.hierarchy.ConcurrentSchema`, via their ``sacx-h``
  attribute, or — as a last resort — via conflict-driven auto-partition.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.goddag import GoddagBuilder, GoddagDocument
from ..core.hierarchy import ConcurrentSchema
from ..errors import SerializationError
from .events import content_events, events_to_spans
from .reserved import (
    FRAGMENT_ID_ATTR,
    FRAGMENT_PART_ATTR,
    HIERARCHY_ATTR,
    strip_reserved,
)

#: A span record: (tag, start, end, user_attributes, hierarchy_hint).
_SpanRecord = tuple[str, int, int, dict[str, str], str | None]


def parse_fragmentation(
    source: str, schema: ConcurrentSchema | None = None
) -> GoddagDocument:
    """Rebuild a GODDAG from a fragmented single-document encoding."""
    parsed = content_events(source)
    spans = events_to_spans(parsed.events)
    records = merge_fragments(spans)
    return build_from_records(
        parsed.text, parsed.root_tag, dict(parsed.root_attributes),
        records, schema,
    )


def merge_fragments(
    spans: list[tuple[str, int, int, dict[str, str]]],
) -> list[_SpanRecord]:
    """Merge fragment groups into logical elements.

    Fragments of one group must agree on tag and hierarchy hint; the
    merged element takes the hull of the fragment spans and the user
    attributes of the first fragment (later fragments may not
    contradict them).
    """
    groups: dict[tuple[str, str], list[tuple[int, int, dict[str, str]]]] = (
        defaultdict(list)
    )
    records: list[_SpanRecord] = []
    for tag, start, end, attributes in spans:
        fid = attributes.get(FRAGMENT_ID_ATTR)
        hint = attributes.get(HIERARCHY_ATTR)
        user = strip_reserved(attributes)
        if fid is None:
            records.append((tag, start, end, user, hint))
        else:
            groups[(tag, fid)].append((start, end, dict(attributes)))
    for (tag, fid), fragments in groups.items():
        fragments.sort()
        start = fragments[0][0]
        end = max(end for (_, end, _) in fragments)
        first_attrs = fragments[0][2]
        hint = first_attrs.get(HIERARCHY_ATTR)
        for _, _, attrs in fragments[1:]:
            other_hint = attrs.get(HIERARCHY_ATTR)
            if other_hint != hint:
                raise SerializationError(
                    f"fragments of <{tag}> group {fid!r} disagree on "
                    f"hierarchy: {hint!r} vs {other_hint!r}"
                )
            for name, value in strip_reserved(attrs).items():
                expected = strip_reserved(first_attrs).get(name, value)
                if expected != value:
                    raise SerializationError(
                        f"fragments of <{tag}> group {fid!r} disagree on "
                        f"attribute {name!r}"
                    )
        records.append((tag, start, end, strip_reserved(first_attrs), hint))
    return records


def build_from_records(
    text: str,
    root_tag: str,
    root_attributes: dict[str, str],
    records: list[_SpanRecord],
    schema: ConcurrentSchema | None,
) -> GoddagDocument:
    """Route span records to hierarchies and build the GODDAG.

    Routing priority: explicit schema > ``sacx-h`` hints > auto-partition
    of whatever is left (hint-less tags in a hint-less document).
    """
    assignment: dict[str, str] = {}
    hierarchy_order: list[str] = []

    def assign(tag: str, hierarchy: str) -> None:
        previous = assignment.get(tag)
        if previous is not None and previous != hierarchy:
            raise SerializationError(
                f"tag {tag!r} routed to both {previous!r} and {hierarchy!r}"
            )
        assignment[tag] = hierarchy
        if hierarchy not in hierarchy_order:
            hierarchy_order.append(hierarchy)

    unrouted: list[_SpanRecord] = []
    for record in records:
        tag, _, _, _, hint = record
        owner = schema.owner_of(tag) if schema is not None else None
        if owner is not None:
            assign(tag, owner)
        elif hint is not None:
            assign(tag, hint)
        elif tag not in assignment:
            unrouted.append(record)
    pending = [r for r in unrouted if r[0] not in assignment]
    if pending:
        derived = ConcurrentSchema.from_annotations(
            [(tag, start, end) for (tag, start, end, _, _) in records
             if tag not in assignment],
            name_format="auto{index}",
        )
        for hierarchy in derived:
            for tag in hierarchy.tags:
                assign(tag, hierarchy.name)

    # Keep schema-declared hierarchies even when empty, in schema order.
    if schema is not None:
        names = list(schema.hierarchy_names())
        for name in hierarchy_order:
            if name not in names:
                names.append(name)
    else:
        names = hierarchy_order

    builder = GoddagBuilder(text, root_tag)
    for name in names:
        builder.add_hierarchy(name)
    for tag, start, end, attributes, _ in records:
        builder.add_annotation(assignment[tag], tag, start, end, attributes)
    document = builder.build()
    document.root.attributes.update(root_attributes)
    return document
