"""The process-wide metrics registry: counters, timers, histograms.

One :data:`metrics` registry serves the whole process.  It starts
**disabled** — every instrument call is a no-op whose cost is one
attribute check — so instrumented hot paths (step evaluation, index
catch-up, row-level saves) pay nothing until someone turns observation
on.  ``benchmarks/bench_obs_overhead.py`` asserts the no-op default
stays under 3% on the bench_e9 hot query shapes.

Instrument names are dotted strings; the catalog lives in
``docs/ARCHITECTURE.md`` (Observability section).  Reason-coded events
append the reason as a suffix (``index.rebuilds.backlog``), so a
snapshot shows both the total and the per-reason split.

The registry is guarded by one lock; instruments are cheap enough that
contention is irrelevant at the library's current single-writer scale.

    >>> from repro.obs.metrics import MetricsRegistry
    >>> registry = MetricsRegistry(enabled=True)
    >>> registry.incr("index.rebuilds")
    >>> registry.observe("journal.coalesce.fold_ratio", 4.0)
    >>> registry.snapshot()["counters"]["index.rebuilds"]
    1
"""

from __future__ import annotations

import math
import threading
import time


class _Dist:
    """Running distribution: count, total, min, max, log2 buckets."""

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        # bucket key b holds values in [2**b, 2**(b+1)); None holds <= 0.
        self.buckets: dict[int | None, int] = {}

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        key = math.floor(math.log2(value)) if value > 0 else None
        self.buckets[key] = self.buckets.get(key, 0) + 1

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": (self.total / self.count) if self.count else 0.0,
            "buckets": {
                ("le0" if key is None else str(key)): n
                for key, n in sorted(
                    self.buckets.items(),
                    key=lambda item: (-1_000 if item[0] is None else item[0]),
                )
            },
        }


class _Timer:
    """Context manager recording one wall-time observation on exit."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.record_ns(self._name, time.perf_counter_ns() - self._start)


class MetricsRegistry:
    """Counters, timers, and histograms behind one enable switch.

    All instruments auto-create on first use.  ``incr`` feeds counters,
    ``observe`` feeds histograms (arbitrary float values — row counts,
    fold ratios), and ``record_ns``/``time`` feed timers (durations,
    kept in nanoseconds).  :meth:`snapshot` returns the whole census as
    plain JSON-shaped data; :meth:`reset` zeroes everything but keeps
    the enabled state.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._timers: dict[str, _Dist] = {}
        self._histograms: dict[str, _Dist] = {}

    # -- switches ---------------------------------------------------------------

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._histograms.clear()

    # -- instruments ------------------------------------------------------------

    def incr(self, name: str, n: int = 1, reason: str | None = None) -> None:
        """Add ``n`` to counter ``name`` (no-op while disabled).  With a
        ``reason``, the reason-suffixed counter ``name.reason`` is bumped
        too, so snapshots carry the per-reason split next to the total."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
            if reason is not None:
                coded = f"{name}.{reason}"
                self._counters[coded] = self._counters.get(coded, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (no-op while disabled)."""
        if not self.enabled:
            return
        with self._lock:
            dist = self._histograms.get(name)
            if dist is None:
                dist = self._histograms[name] = _Dist()
            dist.add(value)

    def record_ns(self, name: str, ns: int) -> None:
        """Record one timer observation, in nanoseconds (no-op while
        disabled)."""
        if not self.enabled:
            return
        with self._lock:
            dist = self._timers.get(name)
            if dist is None:
                dist = self._timers[name] = _Dist()
            dist.add(ns)

    def time(self, name: str) -> _Timer:
        """``with metrics.time("storage.save"):`` — wall-time the block.
        The timer always measures; recording is dropped while disabled
        (two clock reads are cheaper than branching at both ends)."""
        return _Timer(self, name)

    # -- reading ----------------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """JSON-shaped census of every instrument."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "counters": dict(sorted(self._counters.items())),
                "timers": {
                    name: dist.to_dict()
                    for name, dist in sorted(self._timers.items())
                },
                "histograms": {
                    name: dist.to_dict()
                    for name, dist in sorted(self._histograms.items())
                },
            }


#: The process-wide registry every instrumented layer reports to.
#: Disabled (no-op) by default; ``repro.obs.enable()`` flips it on.
metrics = MetricsRegistry(enabled=False)


__all__ = ["MetricsRegistry", "metrics"]
