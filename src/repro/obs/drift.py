"""Estimate-vs-actual cardinality drift capture.

The planner prices each location step with an estimated output
cardinality (``StepPlan.est_out``); the evaluator then observes the
real output.  When observation is on, each completed path evaluation
emits one :class:`DriftRecord` per step into a bounded process-wide
:class:`DriftRing`.  The ring is the input feed for the ROADMAP's
"cardinality feedback" item: a planner that re-prices from observed
drift needs exactly this (expression, step, est, actual) stream.

The ring is bounded (default 256 records) and circular — old records
fall off, :attr:`DriftRing.total_recorded` keeps the lifetime count —
so a long-running process can leave drift capture on without growth.

    >>> ring = DriftRing(capacity=2)
    >>> for n in range(3):
    ...     ring.record(DriftRecord("//w", 0, "descendant", "w", "SCAN", 10, n))
    >>> len(ring.records())
    2
    >>> ring.total_recorded
    3
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

#: Default capacity of the process-wide drift ring.
RING_CAPACITY = 256


@dataclass(frozen=True)
class DriftRecord:
    """One step's estimate-vs-actual outcome from one evaluation run."""

    expression: str      # source text of the path query
    step_index: int      # position of the step within its path
    axis: str            # location-step axis (child, descendant, ...)
    test: str            # node-test as rendered by the planner
    choice: str          # access path the planner selected (SCAN, STAB, ...)
    est_out: float       # planner's estimated output cardinality
    actual_out: int      # observed output cardinality

    @property
    def drift(self) -> float:
        """Signed relative error: (actual - estimate) / max(actual, 1).

        0.0 means the estimate was exact; +0.9 means the planner
        underestimated 10x; negative values are overestimates.
        """
        return (self.actual_out - self.est_out) / max(self.actual_out, 1)

    def to_dict(self) -> dict:
        return {
            "expression": self.expression,
            "step_index": self.step_index,
            "axis": self.axis,
            "test": self.test,
            "choice": self.choice,
            "est_out": self.est_out,
            "actual_out": self.actual_out,
            "drift": round(self.drift, 4),
        }


@dataclass
class DriftRing:
    """Bounded circular buffer of the most recent drift records."""

    capacity: int = RING_CAPACITY
    total_recorded: int = 0
    _buffer: list = field(default_factory=list, repr=False)
    _head: int = field(default=0, repr=False)
    # The process-wide ring is fed from every thread that evaluates
    # with observation on; append/rotate is a multi-step mutation.
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, record: DriftRecord) -> None:
        with self._lock:
            self.total_recorded += 1
            if len(self._buffer) < self.capacity:
                self._buffer.append(record)
            else:
                self._buffer[self._head] = record
                self._head = (self._head + 1) % self.capacity

    def records(self) -> list[DriftRecord]:
        """Retained records, oldest first."""
        with self._lock:
            return self._buffer[self._head:] + self._buffer[:self._head]

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()
            self._head = 0
            self.total_recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def to_dicts(self) -> list[dict]:
        return [record.to_dict() for record in self.records()]


#: Process-wide ring the evaluator feeds while observation is on.
ring = DriftRing()


__all__ = ["DriftRecord", "DriftRing", "RING_CAPACITY", "ring"]
