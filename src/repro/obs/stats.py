"""The unified ``stats()`` dict shape, and the legacy-key shim.

Three layers historically grew three divergent stats schemas:
``IndexManager.stats()`` (flat build/patch counters), the planner's
explain counters (served/fallback totals), and the store-level row
counts.  They now all return the same envelope:

    {
        "schema": "repro-stats/1",
        "source": "index.manager" | "xpath.plan" | "storage.store",
        "counts": {<dotted-name>: int | float, ...},
        ...source-specific extras...
    }

``counts`` keys are dotted, namespaced names from the metric catalog in
docs/ARCHITECTURE.md, so a stats dict from any layer can be merged into
one report without collisions.

For one release the old flat keys keep working: callers indexing the
returned mapping with a legacy key (``stats["builds"]``) get the value
from its new home plus a ``DeprecationWarning`` naming the replacement.
The shim is :class:`DeprecatedKeyDict`; the legacy aliases live with
each producer.
"""

from __future__ import annotations

import warnings

#: Version tag carried by every unified stats dict.
STATS_SCHEMA = "repro-stats/1"


class DeprecatedKeyDict(dict):
    """Dict that answers legacy keys from their replacements, loudly.

    ``aliases`` maps legacy key -> path of the replacement inside this
    dict (a tuple of keys, e.g. ``("counts", "index.builds")``).  Plain
    keys behave normally; a legacy key resolves through its alias and
    raises a :class:`DeprecationWarning` pointing at the new name.

        >>> stats = DeprecatedKeyDict(
        ...     {"counts": {"index.builds": 3}},
        ...     aliases={"builds": ("counts", "index.builds")},
        ... )
        >>> import warnings
        >>> with warnings.catch_warnings():
        ...     warnings.simplefilter("ignore")
        ...     stats["builds"]
        3
    """

    def __init__(self, *args, aliases: dict | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._aliases = dict(aliases or {})

    def _resolve(self, key):
        value = self
        for part in self._aliases[key]:
            value = dict.__getitem__(value, part) if value is self else value[part]
        return value

    def __getitem__(self, key):
        if not dict.__contains__(self, key) and key in self._aliases:
            path = self._aliases[key]
            warnings.warn(
                f"stats key {key!r} is deprecated; read "
                f"{'.'.join(map(str, path))} from the repro-stats/1 shape "
                "instead (see docs/ARCHITECTURE.md, Observability)",
                DeprecationWarning,
                stacklevel=2,
            )
            return self._resolve(key)
        return dict.__getitem__(self, key)

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key) -> bool:
        return dict.__contains__(self, key) or key in self._aliases


def stats_dict(
    source: str,
    counts: dict,
    aliases: dict | None = None,
    **extra,
) -> DeprecatedKeyDict:
    """Build a unified repro-stats/1 dict.

    ``source`` names the producing layer, ``counts`` holds the dotted
    metric names, ``aliases`` maps legacy flat keys to their new paths,
    and ``extra`` carries source-specific sections verbatim.
    """
    payload = {"schema": STATS_SCHEMA, "source": source, "counts": dict(counts)}
    payload.update(extra)
    return DeprecatedKeyDict(payload, aliases=aliases)


__all__ = ["STATS_SCHEMA", "DeprecatedKeyDict", "stats_dict"]
