"""Observability for the repro library: tracing, metrics, drift capture.

Everything here is zero-dependency and **off by default** — the
instrumented hot paths (step evaluation, index catch-up, row-level
saves) pay one attribute check while observation is disabled, an
overhead the bench suite asserts stays under 3%.

Three cooperating pieces:

* :class:`Tracer` / :func:`tracing` — nested spans with wall time and
  typed attributes (query → plan → step → access-path on the query
  side; save → coalesce → transaction on the storage side),
  exportable as JSON lines.
* :data:`metrics` — the process-wide :class:`MetricsRegistry` of
  counters / timers / histograms every layer reports to (the compiled
  query engine lands its ``xpath.plan_cache.hits`` /
  ``xpath.plan_cache.misses`` pair here, and
  ``repro.xpath.plan_cache_stats()`` reads the same tallies without
  enabling metrics).
* :data:`drift` ring — bounded buffer of per-step estimate-vs-actual
  :class:`DriftRecord` entries, the input feed for cardinality
  feedback.

Typical session::

    import repro.obs as obs

    obs.enable()                      # metrics + drift capture on
    with obs.tracing() as tracer:
        results = xpath("//page", document)
    print(tracer.export_jsonl())
    print(obs.report())               # one merged snapshot
    obs.disable()

See the "Observability" section of docs/ARCHITECTURE.md for the span
hierarchy, the metric name catalog, and how to read
``explain(analyze=True)``.
"""

from __future__ import annotations

import os
import warnings

from .drift import DriftRecord, DriftRing, RING_CAPACITY, ring
from .metrics import MetricsRegistry, metrics
from .stats import STATS_SCHEMA, DeprecatedKeyDict, stats_dict
from .trace import SPAN_LIMIT, Span, Tracer, current_tracer, tracing

#: Environment switch: when set to "1", silent fallbacks (index rebuild
#: instead of patch, storage full rewrite instead of row-level save)
#: additionally raise a ``warnings.warn`` naming the reason code.
STRICT_ENV = "REPRO_OBS_STRICT"


def enable() -> None:
    """Turn on metrics and drift capture process-wide."""
    metrics.enable()


def disable() -> None:
    """Return to the no-op default (existing data is kept; see reset())."""
    metrics.disable()


def reset() -> None:
    """Clear all collected metrics and drift records."""
    metrics.reset()
    ring.clear()


def active() -> bool:
    """True when any observation sink is live (metrics or a tracer)."""
    return metrics.enabled or current_tracer() is not None


def strict() -> bool:
    """True when ``REPRO_OBS_STRICT=1``: fallbacks also warn."""
    return os.environ.get(STRICT_ENV, "") == "1"


def fallback(event: str, reason: str, detail: str = "") -> None:
    """Record a fallback event with its reason code.

    Bumps the ``event`` counter with the reason suffix; when strict
    mode is on, additionally emits a :class:`RuntimeWarning` so tests
    and CI can surface silent degradation.
    """
    metrics.incr(event, reason=reason)
    if strict():
        message = f"{event}: fell back ({reason})"
        if detail:
            message += f" — {detail}"
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def report() -> dict:
    """One merged, JSON-shaped snapshot of everything observed so far.

        >>> import repro.obs as obs
        >>> sorted(obs.report())
        ['drift', 'metrics', 'schema', 'strict']
    """
    return {
        "schema": "repro-obs-report/1",
        "metrics": metrics.snapshot(),
        "drift": {
            "capacity": ring.capacity,
            "recorded": ring.total_recorded,
            "retained": len(ring),
            "records": ring.to_dicts(),
        },
        "strict": strict(),
    }


# The process-wide drift ring, re-exported under its role name.
drift = ring

__all__ = [
    "DriftRecord",
    "DriftRing",
    "RING_CAPACITY",
    "MetricsRegistry",
    "metrics",
    "STATS_SCHEMA",
    "DeprecatedKeyDict",
    "stats_dict",
    "SPAN_LIMIT",
    "Span",
    "Tracer",
    "current_tracer",
    "tracing",
    "STRICT_ENV",
    "enable",
    "disable",
    "reset",
    "active",
    "strict",
    "fallback",
    "report",
    "drift",
    "ring",
]
