"""Standardized machine-readable benchmark output (``BENCH_<name>.json``).

Every bench in ``benchmarks/`` emits one of these next to its text
output so the perf trajectory is diffable across commits:

    {
        "schema": "repro-bench/1",
        "name": "e9_index_speedup",
        "scenarios": [
            {"scenario": "name_query_indexed", "size": 8000, "reps": 5,
             "median_s": 0.0012, "p90_s": 0.0014, ...extras...},
            ...
        ],
        "metrics": {<MetricsRegistry.snapshot()>}
    }

:func:`compare` is the engine behind ``benchmarks/check_regression.py``:
it pairs scenarios by (scenario, size) and flags any whose median wall
time regressed more than the threshold (default 20%).  Scenarios may
additionally carry memory fields (``peak_rss_kb``, from
``benchmarks/_emit.py``'s sampler); when a matched pair carries one on
*both* sides it is compared under the same relative-threshold rules,
and flagged entries say which metric tripped via their ``metric`` key.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

#: Version tag carried by every bench JSON file.
BENCH_SCHEMA = "repro-bench/1"

#: check_regression's default tolerance: >20% slower fails.
DEFAULT_THRESHOLD = 0.2


def percentile(samples, fraction: float) -> float:
    """Nearest-rank-interpolated percentile of a non-empty sample list."""
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def scenario(name: str, size, samples, **extra) -> dict:
    """One scenario entry from raw wall-time samples (seconds)."""
    entry = {
        "scenario": name,
        "size": size,
        "reps": len(samples),
        "median_s": percentile(samples, 0.5),
        "p90_s": percentile(samples, 0.9),
        "min_s": min(samples),
    }
    entry.update(extra)
    return entry


def write_bench_json(
    directory,
    name: str,
    scenarios: list,
    metrics_snapshot: dict | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` into ``directory`` and return its path."""
    path = Path(directory) / f"BENCH_{name}.json"
    payload = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "scenarios": scenarios,
        "metrics": metrics_snapshot or {},
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return path


def load(path) -> dict:
    """Load and sanity-check one bench JSON file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BENCH_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    return payload


def compare(
    baseline: dict,
    current: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> dict:
    """Pair scenarios by (scenario, size) and flag median-time regressions.

    Returns ``{"regressions": [...], "improvements": [...], "matched": n,
    "unmatched": [...]}``.  A regression is a matched scenario whose
    current median exceeds baseline by more than ``threshold``
    (relative).  Scenarios present on only one side are listed as
    unmatched, never flagged.

    Memory is held to the same contract as time: when both sides of a
    matched pair carry ``peak_rss_kb``, its relative growth is checked
    against the same threshold and flagged as a separate entry with
    ``metric: "peak_rss_kb"`` (time entries say ``metric: "median_s"``).
    A side without the field — an older baseline, a bench that never
    sampled — is simply not compared on memory, never flagged.
    """

    def keyed(payload):
        return {
            (entry["scenario"], entry.get("size")): entry
            for entry in payload.get("scenarios", [])
        }

    base = keyed(baseline)
    cur = keyed(current)
    regressions, improvements, unmatched = [], [], []
    for key in sorted(set(base) | set(cur), key=str):
        if key not in base or key not in cur:
            unmatched.append({"scenario": key[0], "size": key[1]})
            continue
        for metric in ("median_s", "peak_rss_kb"):
            before = base[key].get(metric)
            after = cur[key].get(metric)
            if before is None or after is None:
                continue
            ratio = (after / before) if before > 0 else math.inf
            entry = {
                "scenario": key[0],
                "size": key[1],
                "metric": metric,
                f"baseline_{metric}": before,
                f"current_{metric}": after,
                "ratio": round(ratio, 4),
            }
            if ratio > 1 + threshold:
                regressions.append(entry)
            elif ratio < 1 - threshold:
                improvements.append(entry)
    return {
        "regressions": regressions,
        "improvements": improvements,
        "matched": len(set(base) & set(cur)),
        "unmatched": unmatched,
    }


__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_THRESHOLD",
    "percentile",
    "scenario",
    "write_bench_json",
    "load",
    "compare",
]
