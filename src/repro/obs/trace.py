"""Nested-span tracer with JSON-lines export.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
traced operation — each with a wall-clock duration and a small dict of
typed attributes.  The span hierarchy mirrors the library's layers:

    query                     one evaluate() call
    ├─ plan                   planner pass (cache miss only)
    └─ execute                the path walk
       └─ step                one location step over its context set
          └─ access-path      index service for that step

and on the storage side ``save → coalesce → transaction``.

Tracing is explicitly scoped: nothing is traced unless a tracer has
been installed, either via the :func:`repro.obs.tracing` context
manager or :meth:`Tracer.install`.  Instrumented code asks
:func:`current_tracer` (a module-global read — this library is
single-writer by design, see docs/ARCHITECTURE.md) and skips all span
work when it returns None.

Spans can explode on pathological queries — a predicate with an inner
relative path is evaluated once per candidate node — so a tracer caps
retained spans (default 50 000) and counts the dropped remainder in
:attr:`Tracer.dropped` instead of growing without bound.

    >>> tracer = Tracer()
    >>> with tracer.span("query", expression="//page"):
    ...     with tracer.span("step", axis="descendant"):
    ...         pass
    >>> [span.name for span in tracer.walk()]
    ['query', 'step']
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Iterator

#: Retained-span cap for a fresh Tracer(); excess spans are counted, not kept.
SPAN_LIMIT = 50_000


class Span:
    """One traced operation: name, wall time, attributes, children."""

    __slots__ = ("name", "start_ns", "duration_ns", "attributes", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.start_ns = 0
        self.duration_ns = 0
        self.attributes: dict = {}
        self.children: list[Span] = []

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) typed attributes on this span."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def to_dict(self) -> dict:
        """This span and its subtree as plain JSON-shaped data."""
        return {
            "name": self.name,
            "duration_ns": self.duration_ns,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f}ms, "
            f"{len(self.children)} children)"
        )


class Tracer:
    """Collects a forest of spans for one observed run.

    Use :meth:`span` as a context manager around the operation; nesting
    follows the runtime call stack.  :meth:`export_jsonl` flattens the
    forest to JSON lines (one span per line, parent ids assigned
    depth-first) for offline tooling.
    """

    def __init__(self, max_spans: int = SPAN_LIMIT) -> None:
        self.roots: list[Span] = []
        self.dropped = 0
        self._max_spans = max_spans
        self._count = 0
        self._stack: list[Span] = []

    # -- recording --------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Record a span around the enclosed block.

        Past the span cap a detached throwaway span is yielded so caller
        code (``span.set(...)``) keeps working while nothing is retained.
        """
        span = Span(name)
        if attributes:
            span.attributes.update(attributes)
        retained = self._count < self._max_spans
        if retained:
            self._count += 1
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
        else:
            self.dropped += 1
        self._stack.append(span)
        span.start_ns = time.perf_counter_ns()
        try:
            yield span
        finally:
            span.duration_ns = time.perf_counter_ns() - span.start_ns
            self._stack.pop()

    # -- reading ----------------------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """All retained spans, depth-first."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> list[Span]:
        """All retained spans with the given name, depth-first order."""
        return [span for span in self.walk() if span.name == name]

    def to_dicts(self) -> list[dict]:
        return [root.to_dict() for root in self.roots]

    def export_jsonl(self) -> str:
        """One JSON object per line; ids assigned depth-first, children
        point at their parent via ``parent_id`` (roots use None)."""
        lines = []
        next_id = [0]

        def emit(span: Span, parent_id: int | None) -> None:
            span_id = next_id[0]
            next_id[0] += 1
            lines.append(json.dumps({
                "id": span_id,
                "parent_id": parent_id,
                "name": span.name,
                "start_ns": span.start_ns,
                "duration_ns": span.duration_ns,
                "attributes": span.attributes,
            }, sort_keys=True, default=str))
            for child in span.children:
                emit(child, span_id)

        for root in self.roots:
            emit(root, None)
        return "\n".join(lines)

    # -- installation -----------------------------------------------------------

    def install(self) -> "Tracer":
        """Make this the process-current tracer (see :func:`current_tracer`)."""
        global _current
        _current = self
        return self

    def uninstall(self) -> None:
        global _current
        if _current is self:
            _current = None


_current: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is off (the default)."""
    return _current


@contextmanager
def tracing(max_spans: int = SPAN_LIMIT) -> Iterator[Tracer]:
    """Install a fresh tracer for the enclosed block.

        >>> from repro.obs import tracing
        >>> with tracing() as tracer:
        ...     pass  # evaluate queries, save documents, ...
        >>> tracer.dropped
        0
    """
    global _current
    previous = _current
    tracer = Tracer(max_spans=max_spans)
    tracer.install()
    try:
        yield tracer
    finally:
        _current = previous


__all__ = ["Span", "Tracer", "SPAN_LIMIT", "current_tracer", "tracing"]
