"""Per-document fan-out for cross-document queries.

One routed query visits many documents; this module evaluates the
per-document expression against each of them in one of three execution
modes — ``serial``, ``thread``, ``process`` — and guarantees the merged
answer is **byte-identical** across all three:

* every document is loaded under the service's snapshot discipline
  (stamp → load → stamp, retried when a writer publishes in between),
  so a result row set is always internally consistent with the
  generation it reports;
* node results are flattened to plain comparable tuples
  (:func:`node_rows`) — picklable for the process pool and
  order-stable, since the evaluator already emits document order;
* chunks are reassembled in the caller's document-name order whatever
  order the workers finished in.

Process workers re-open the store read-only from the database *path*
(one cached connection per worker process — never a connection
inherited across ``fork``, which SQLite forbids).  When a process pool
cannot be used (no ``fork``/spawn support, pickling trouble, a broken
pool), the fan-out falls back to threads and reports itself on the
``collection.fanout`` fallback metric rather than failing the query.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..core.node import Element
from ..errors import ServiceError
from ..obs import fallback as _obs_fallback
from ..obs.metrics import metrics
from ..storage.sqlite_backend import SqliteStore
from ..storage.store import GoddagStore
from ..xpath.axes import AttributeNode, DocumentNode
from ..xpath.engine import ExtendedXPath

_SNAPSHOT_ATTEMPTS = 8

#: One read-only store connection per (worker process, database path).
#: Keyed by pid so a connection is never reused across a fork — each
#: worker opens its own on first use.
_process_stores: dict[tuple[int, str], SqliteStore] = {}


def snapshot_load(backend: SqliteStore, name: str):
    """``(document, generation)`` under the service's snapshot
    discipline: the generation stamp is probed before and after the
    load, and the load retried when a writer published in between."""
    store = GoddagStore.over(backend)
    for _ in range(_SNAPSHOT_ATTEMPTS):
        before = backend.index_stamp(name)
        document = store.load(name)
        if backend.index_stamp(name) == before:
            return document, before
    raise ServiceError(
        f"document {name!r} kept being republished while opening "
        f"a snapshot ({_SNAPSHOT_ATTEMPTS} attempts)"
    )


def node_rows(value) -> tuple:
    """Flatten an XPath result into comparable, picklable row tuples.

    Node-sets become one row per node in the order the evaluator
    produced (document order); scalar results become a single
    ``("value", ...)`` row.  The encoding is total over every node kind
    the evaluator can emit, so two evaluations agree exactly when their
    rows agree.
    """
    if not isinstance(value, list):
        return (("value", type(value).__name__, value),)
    rows = []
    for node in value:
        if isinstance(node, AttributeNode):
            rows.append(("attribute", node.owner.elem_id, node.name,
                         node.value))
        elif isinstance(node, DocumentNode):
            rows.append(("document",))
        elif isinstance(node, Element):
            rows.append((
                "element", node.elem_id, node.hierarchy, node.tag,
                node.start, node.end,
                tuple(sorted(node.attributes.items())),
            ))
        else:  # Leaf
            rows.append(("leaf", node.start, node.end))
    return tuple(rows)


def evaluate_documents(
    backend: SqliteStore, names: list[str], expression: str
) -> list[tuple[str, str | None, tuple]]:
    """Evaluate ``expression`` per document over one borrowed
    connection; returns ``(name, generation, rows)`` triples.

    Evaluation runs the classic unindexed engine (``index=False``): the
    answers are identical by the index contract, and a cold
    per-document manager build would dominate a one-shot visit.
    """
    query = ExtendedXPath(expression)
    out = []
    for name in names:
        document, generation = snapshot_load(backend, name)
        value = query.evaluate(document, index=False)
        out.append((name, generation, node_rows(value)))
    return out


def _worker_chunk(
    path: str, names: list[str], expression: str
) -> list[tuple[str, str | None, tuple]]:
    """Process-pool entry point: evaluate one chunk against a
    per-worker read-only connection (module-level so it pickles)."""
    key = (os.getpid(), path)
    backend = _process_stores.get(key)
    if backend is None:
        backend = _process_stores[key] = SqliteStore(path, wal=True)
    return evaluate_documents(backend, names, expression)


def run_fanout(pool, names: list[str], expression: str, *,
               mode: str = "serial", workers: int | None = None,
               process_pool=None, thread_pool=None
               ) -> list[tuple[str, str | None, tuple]]:
    """Fan ``expression`` out over ``names`` and merge the answers back
    in the caller's name order (the stable ``(doc, document-order)``
    contract — identical whatever mode ran).

    ``pool`` is the corpus's :class:`SqliteConnectionPool`; ``mode`` is
    ``"serial"``, ``"thread"`` or ``"process"``; ``process_pool`` /
    ``thread_pool`` are reusable executors owned by the caller.
    """
    if mode not in ("serial", "thread", "process"):
        raise ServiceError(
            f"unknown fan-out mode {mode!r}: use 'serial', 'thread' "
            "or 'process'"
        )
    if workers is None:
        workers = min(4, len(os.sched_getaffinity(0)) or 1)
    if mode == "serial" or workers <= 1 or len(names) <= 1:
        with metrics.time("collection.fanout.serial"):
            with pool.connection() as backend:
                return evaluate_documents(backend, names, expression)
    chunks = [names[i::workers] for i in range(workers) if names[i::workers]]
    if mode == "process" and process_pool is None:
        _obs_fallback("collection.fanout", "process-unavailable",
                      "no process pool could be created")
        mode = "thread"
    if mode == "process":
        try:
            with metrics.time("collection.fanout.process"):
                results = list(process_pool.map(
                    _worker_chunk,
                    [pool.path] * len(chunks),
                    chunks,
                    [expression] * len(chunks),
                ))
            return _merge(names, results)
        except (BrokenProcessPool, OSError, ImportError) as exc:
            _obs_fallback("collection.fanout", "process-unavailable",
                          str(exc))
            mode = "thread"

    def chunk_on_pool(chunk: list[str]):
        with pool.connection() as backend:
            return evaluate_documents(backend, chunk, expression)

    with metrics.time("collection.fanout.thread"):
        results = list(thread_pool.map(chunk_on_pool, chunks))
    return _merge(names, results)


def _merge(names: list[str], results) -> list:
    by_name = {
        entry[0]: entry for chunk in results for entry in chunk
    }
    return [by_name[name] for name in names]


__all__ = [
    "evaluate_documents", "node_rows", "run_fanout", "snapshot_load",
]
