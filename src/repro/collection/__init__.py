"""Collection-scale querying: corpus store, summary routing, fan-out.

The three pieces of the collection layer (see docs/ARCHITECTURE.md,
"Collection layer"):

* :class:`Corpus` (:mod:`.corpus`) — thousands of named documents in
  one WAL-mode store, with cross-document ``collection()//...``
  queries, ``explain()``, and ``repro-stats/1`` counts;
* :mod:`.router` — necessary-condition feature extraction against the
  delta-maintained ``collection_summary`` table, so a selective query
  visits only the documents that can match;
* :mod:`.fanout` — serial / threaded / process per-document execution
  with byte-identical merged answers.
"""

from .corpus import (
    CollectionPlan,
    CollectionResult,
    Corpus,
    split_collection_expression,
)
from .router import routing_features

__all__ = [
    "CollectionPlan",
    "CollectionResult",
    "Corpus",
    "routing_features",
    "split_collection_expression",
]
