"""Routing-feature extraction for cross-document queries.

The collection summary (``collection_summary`` in
:mod:`repro.storage.sqlite_backend`) maps per-document populations —
tags, hierarchy-agnostic label paths, term-index tokens, attribute
``(name, value)`` postings — to the documents that hold them.  This
module derives, from a compiled per-document XPath AST, the set of
**necessary conditions** a document must satisfy for the query to
return anything: every feature is a population the document *must*
have, so a document missing one can be skipped without evaluating it.

The extraction is deliberately conservative — DescribeX-style pruning
where soundness is non-negotiable:

* only shapes whose semantics are fully understood contribute features
  (name tests, ``and``/``or``, existence paths, ``contains``/
  ``starts-with`` on the context node with indexable literals,
  ``@name = 'literal'``); everything else — ``not()``, ``count()``,
  positional predicates, arithmetic, variables — contributes nothing
  and the document is kept;
* ``or`` takes the *intersection* of its branches (a feature must be
  necessary whichever branch fires), ``and`` the union, and a top-level
  union of paths likewise intersects;
* the shared GODDAG root needs care: ``//x`` can select the root
  element and ``ancestor::x`` can reach it, yet the root is not an
  element row — so a tag feature is satisfied by the root tag too, and
  the first step of an absolute path becomes a ``root`` feature rather
  than a ``tag`` feature (the backend matches both against
  ``documents.root_tag``; see ``SqliteStore.route_documents``).

A false positive costs one wasted per-document evaluation; a false
negative would change answers — the differential harness
(``tests/test_collection_differential.py``) holds routed and unrouted
runs byte-identical across random corpora and edit scripts.
"""

from __future__ import annotations

from ..index.structural import encode_path
from ..index.term import TermIndex
from ..xpath.ast import (
    Binary,
    Expr,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Step,
    Union,
)
from ..xpath.optimizer import (
    indexable_attr_eq,
    indexable_contains,
    indexable_starts_with,
)

#: A routing feature: ``("root", tag)``, ``("tag", tag)``,
#: ``("term", needle)``, ``("attr", name, value)``, or
#: ``("path", encoded_label_path)``.
Feature = tuple


def routing_features(expr: Expr) -> frozenset[Feature]:
    """The necessary-condition features of a per-document expression."""
    return frozenset(_expr_features(expr))


def _expr_features(expr: Expr) -> set[Feature]:
    if isinstance(expr, LocationPath):
        return _path_features(expr)
    if isinstance(expr, Union):
        return _expr_features(expr.left) & _expr_features(expr.right)
    if isinstance(expr, Binary) and expr.op == "|":
        return _expr_features(expr.left) & _expr_features(expr.right)
    if isinstance(expr, FilterExpr):
        feats = _expr_features(expr.primary)
        feats |= _predicate_set(expr.predicates)
        for step in expr.steps:
            feats |= _step_features(step)
        return feats
    return set()


def _path_features(path: LocationPath) -> set[Feature]:
    feats: set[Feature] = set()
    steps = path.steps
    start = 0
    if path.absolute and steps and steps[0].axis == "child":
        # The first child step of an absolute path selects against the
        # shared root, which is not an element row: a plain name test
        # here pins the stored root tag instead of a tag population.
        head = steps[0]
        test = head.test
        if (test.kind == "name" and test.name != "*"
                and test.hierarchy is None):
            feats.add(("root", test.name))
        feats |= _predicate_set(head.predicates)
        start = 1
        # An unbroken child chain below the root is a label path: every
        # match of the last step heads a partition whose (hierarchy-
        # agnostic) encoded path must be populated.
        chain: list[str] | None = []
        for step in steps[1:]:
            if (step.axis == "child" and step.test.kind == "name"
                    and step.test.name != "*"):
                chain.append(step.test.name)
            else:
                chain = None
                break
        if chain:
            feats.add(("path", encode_path(tuple(chain))))
    for step in steps[start:]:
        feats |= _step_features(step)
    return feats


def _step_features(step: Step) -> set[Feature]:
    feats = _predicate_set(step.predicates)
    # A name test on any element axis requires the tag to exist in the
    # document (the backend also accepts a matching root tag, since
    # ancestor:: and // reach the shared root).  The attribute axis
    # names attributes, not tags.
    if (step.axis != "attribute" and step.test.kind == "name"
            and step.test.name != "*"):
        feats.add(("tag", step.test.name))
    return feats


def _predicate_set(predicates: tuple[Expr, ...]) -> set[Feature]:
    feats: set[Feature] = set()
    for predicate in predicates:
        feats |= _predicate_features(predicate)
    return feats


def _predicate_features(predicate: Expr) -> set[Feature]:
    if isinstance(predicate, LocationPath):
        # Existence test: some node must satisfy the path for the
        # predicate to hold anywhere.
        return _path_features(predicate)
    if isinstance(predicate, (Union, FilterExpr)):
        return _expr_features(predicate)
    if isinstance(predicate, Binary):
        if predicate.op == "and":
            return (_predicate_features(predicate.left)
                    | _predicate_features(predicate.right))
        if predicate.op == "or":
            return (_predicate_features(predicate.left)
                    & _predicate_features(predicate.right))
        attr = indexable_attr_eq(predicate)
        if attr is not None:
            # Root attributes are not posting rows; the backend backs
            # this feature with a root-attribute prefilter, so the
            # extraction stays sound even for predicates that can land
            # on the root.
            return {("attr", attr[0], attr[1])}
        return set()
    if isinstance(predicate, FunctionCall):
        for probe in (indexable_contains, indexable_starts_with):
            literal = probe(predicate)
            if literal is not None and TermIndex.is_indexable(literal):
                # The tested text is part of the document text, so some
                # token must contain the literal (term keys are single
                # tokens — the backend matches by substring).
                return {("term", literal)}
        return set()
    return set()


def describe(features: frozenset[Feature]) -> list[str]:
    """Stable human-readable labels for a feature set (explain output)."""
    labels = []
    for feature in sorted(features):
        if feature[0] == "attr":
            labels.append(f"attr @{feature[1]}={feature[2]!r}")
        elif feature[0] == "path":
            labels.append(f"path /{feature[1]}")
        else:
            labels.append(f"{feature[0]} {feature[1]!r}")
    return labels


__all__ = ["Feature", "routing_features", "describe"]
