"""The corpus layer: thousands of named documents in one WAL store.

``Corpus`` is the collection-scale counterpart of
:class:`~repro.storage.GoddagStore`: one file-backed, WAL-mode sqlite
database holding many named GODDAG documents, queried *across*
documents with the ``collection()`` prefix::

    corpus = Corpus("editions.db")
    corpus.add_many((doc, f"play-{i}") for i, doc in enumerate(docs))

    result = corpus.query("collection()//sp[@who='hamlet']")
    for name, row in result.hits:
        ...

    print(corpus.explain("collection()//sp").render())

Cross-document queries are **routed**: the per-document expression is
compiled once, its necessary features extracted
(:mod:`repro.collection.router`), and the persisted collection summary
consulted so only candidate documents are visited — latency scales
with the matching subset, not the corpus.  Routing never changes
answers (pruned documents are exactly those that must return nothing);
``routing=False`` visits every document and produces byte-identical
rows.  Execution fans out per document in serial, threaded, or
process mode (:mod:`repro.collection.fanout`) with identical merged
results.

Every mutation goes through ``GoddagStore.save_indexed``, so documents
are always indexed on arrival and the collection summary is maintained
as a delta — adding or editing one document never rescans the corpus.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from ..core.goddag import GoddagDocument
from ..errors import StorageError
from ..index.manager import IndexManager
from ..obs.metrics import metrics
from ..storage.sqlite_backend import SqliteConnectionPool
from ..storage.store import GoddagStore
from ..xpath.engine import ExtendedXPath
from .fanout import run_fanout
from .router import describe, routing_features

_PREFIX = "collection()"


def split_collection_expression(expression: str) -> str:
    """The per-document remainder of a ``collection()...`` expression.

    ``collection()//sp`` → ``//sp``; the remainder must be an absolute
    path (start with ``/``) so each document is entered from its own
    document node.
    """
    stripped = expression.strip()
    if not stripped.startswith(_PREFIX):
        raise StorageError(
            f"a cross-document query starts with 'collection()': "
            f"got {expression!r}"
        )
    remainder = stripped[len(_PREFIX):]
    if not remainder.startswith("/"):
        raise StorageError(
            f"the per-document part of {expression!r} must be an "
            "absolute path (collection()//tag, collection()/play[...])"
        )
    return remainder


@dataclass(frozen=True)
class CollectionPlan:
    """The routing decision for one cross-document query."""

    expression: str
    per_document: str
    features: tuple[str, ...]
    total: int
    routed: tuple[str, ...]

    @property
    def routed_count(self) -> int:
        return len(self.routed)

    @property
    def pruned(self) -> int:
        return self.total - len(self.routed)

    def render(self) -> str:
        """EXPLAIN-style text: the decision and why."""
        lines = [
            f"collection query: {self.expression}",
            f"  per-document:   {self.per_document}",
            f"  routed {self.routed_count} of {self.total} documents"
            f" ({self.pruned} pruned)",
        ]
        if self.features:
            lines.append("  necessary features:")
            lines.extend(f"    - {label}" for label in self.features)
        else:
            lines.append("  necessary features: none (route everything)")
        return "\n".join(lines)


@dataclass(frozen=True)
class CollectionResult:
    """The merged answer of one cross-document query.

    ``hits`` is the flat, stable ``(document, row)`` sequence — rows
    are :func:`~repro.collection.fanout.node_rows` tuples in document
    order within each document, documents in sorted-name order; this is
    the byte-identity surface across routing and execution modes.
    ``documents`` records each visited document with the generation
    stamp its snapshot carried.
    """

    plan: CollectionPlan
    mode: str
    workers: int
    documents: tuple[tuple[str, str | None], ...]
    rows_by_document: dict[str, tuple] = field(repr=False)

    @property
    def hits(self) -> list[tuple[str, tuple]]:
        return [
            (name, row)
            for name, _generation in self.documents
            for row in self.rows_by_document[name]
        ]

    def __len__(self) -> int:
        return sum(len(rows) for rows in self.rows_by_document.values())


class Corpus:
    """A queryable collection of named documents over one WAL store."""

    def __init__(self, location: str | Path, *, pool_size: int = 8,
                 busy_timeout_ms: int = 5000,
                 pool_timeout_s: float = 30.0) -> None:
        self._pool = SqliteConnectionPool(
            str(location), pool_size, wal=True,
            busy_timeout_ms=busy_timeout_ms,
            acquire_timeout_s=pool_timeout_s,
        )
        self._owns_pool = True
        self._thread_pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None
        self._executor_workers = 0

    @classmethod
    def over(cls, pool: SqliteConnectionPool) -> "Corpus":
        """A corpus view over an *existing* connection pool — typically
        the document service's (see ``DocumentService.corpus``).  The
        pool stays the lender's to close."""
        corpus = cls.__new__(cls)
        corpus._pool = pool
        corpus._owns_pool = False
        corpus._thread_pool = None
        corpus._process_pool = None
        corpus._executor_workers = 0
        return corpus

    @property
    def location(self) -> str:
        return self._pool.path

    # -- population ---------------------------------------------------------------

    def add(self, document: GoddagDocument, name: str, *,
            overwrite: bool = False) -> str | None:
        """Store ``document`` under ``name``, indexed, and return its
        generation stamp.  The collection summary rows are written in
        the same transaction as the index rows."""
        with self._pool.connection() as backend:
            return self._add_on(backend, document, name, overwrite)

    def add_many(self, items, *, overwrite: bool = False) -> dict[str, str | None]:
        """Bulk ingest: ``items`` yields ``(document, name)`` pairs;
        one borrowed connection serves the whole batch.  Returns the
        per-document generation stamps.

        ``items`` may be any lazy iterable — a generator materializing
        one document at a time keeps only the current document alive,
        so a corpus larger than memory ingests fine.  Progress is
        observable per document on the ``collection.ingest_docs``
        counter (next to the batch-level ``collection.ingest`` timer).
        """
        stamps: dict[str, str | None] = {}
        with metrics.time("collection.ingest"):
            with self._pool.connection() as backend:
                for document, name in items:
                    stamps[name] = self._add_on(
                        backend, document, name, overwrite
                    )
                    metrics.incr("collection.ingest_docs")
        return stamps

    def add_streams(self, items, *, overwrite: bool = False,
                    chunk_elements: int = 1024,
                    chunk_chars: int = 1 << 16) -> dict[str, str]:
        """Bulk ingest straight from sources, never materializing.

        ``items`` lazily yields ``(sources, name)`` pairs, where
        ``sources`` maps hierarchy names to XML sources as accepted by
        :func:`repro.streaming.ingest.stream_save`; each member is
        stream-parsed into its rows (document, index, and collection
        summary) in chunked transactions over one borrowed connection.
        Returns the per-document generation stamps; progress lands on
        the same ``collection.ingest_docs`` counter as :meth:`add_many`.
        """
        from ..streaming.ingest import stream_save

        stamps: dict[str, str] = {}
        with metrics.time("collection.ingest"):
            with self._pool.connection() as backend:
                for sources, name in items:
                    stamps[name] = stream_save(
                        backend, sources, name, overwrite=overwrite,
                        chunk_elements=chunk_elements,
                        chunk_chars=chunk_chars,
                    )
                    metrics.incr("collection.ingest_docs")
        return stamps

    def _add_on(self, backend, document: GoddagDocument, name: str,
                overwrite: bool) -> str | None:
        store = GoddagStore.over(backend)
        manager = document.index_manager
        if manager is None or manager.document is not document:
            manager = IndexManager(document)
        store.save_indexed(document, name, manager=manager,
                           overwrite=overwrite)
        return backend.index_stamp(name)

    def remove(self, name: str) -> None:
        with self._pool.connection() as backend:
            backend.delete(name)

    # -- introspection ------------------------------------------------------------

    def names(self) -> list[str]:
        with self._pool.connection() as backend:
            return backend.names()

    def has(self, name: str) -> bool:
        with self._pool.connection() as backend:
            return backend.has(name)

    def document(self, name: str) -> GoddagDocument:
        """A materialized snapshot of one member document."""
        with self._pool.connection() as backend:
            return GoddagStore.over(backend).load(name)

    def generation(self, name: str) -> str | None:
        """The document's current generation stamp (its persisted-index
        stamp; ``None`` when it has no index)."""
        with self._pool.connection() as backend:
            return backend.index_stamp(name)

    def __len__(self) -> int:
        return len(self.names())

    def __iter__(self):
        return iter(self.names())

    def __contains__(self, name: str) -> bool:
        return self.has(name)

    def stats(self) -> dict:
        """Corpus-level counts in the ``repro-stats/1`` envelope:
        documents, indexed documents, element rows, and the collection
        summary's size by feature family."""
        from ..obs.stats import stats_dict

        with self._pool.connection() as backend:
            raw = backend.corpus_counts()
        counts = {f"collection.{key}": value for key, value in raw.items()}
        return stats_dict(
            "collection.corpus", counts, location=self.location,
        )

    # -- cross-document queries -----------------------------------------------------

    def explain(self, expression: str, *, routing: bool = True
                ) -> CollectionPlan:
        """The routing decision for ``expression`` — which documents
        would be visited and which necessary features pruned the rest —
        without running the query."""
        per_document = split_collection_expression(expression)
        compiled = ExtendedXPath(per_document)
        features = routing_features(compiled.ast) if routing else frozenset()
        with self._pool.connection() as backend:
            total = len(backend.names())
            routed = backend.route_documents(features)
        return CollectionPlan(
            expression=expression,
            per_document=per_document,
            features=tuple(describe(features)),
            total=total,
            routed=tuple(routed),
        )

    def query(self, expression: str, *, routing: bool = True,
              mode: str = "serial", workers: int | None = None
              ) -> CollectionResult:
        """Run a cross-document query and merge the per-document
        answers in stable ``(document, document-order)`` order.

        ``routing=False`` skips the collection summary and visits every
        document; ``mode`` selects the fan-out execution
        (``serial``/``thread``/``process``).  The merged rows are
        byte-identical across every combination.
        """
        with metrics.time("collection.query"):
            plan = self.explain(expression, routing=routing)
            metrics.incr("collection.queries")
            metrics.incr("collection.routed", plan.routed_count)
            metrics.incr("collection.pruned", plan.pruned)
            names = list(plan.routed)
            workers = workers or 0
            thread_pool = process_pool = None
            if mode in ("thread", "process"):
                thread_pool, process_pool = self._executors(workers)
            triples = run_fanout(
                self._pool, names, plan.per_document,
                mode=mode, workers=workers or None,
                process_pool=process_pool,
                thread_pool=thread_pool,
            )
        return CollectionResult(
            plan=plan,
            mode=mode,
            workers=workers,
            documents=tuple(
                (name, generation) for name, generation, _rows in triples
            ),
            rows_by_document={
                name: rows for name, _generation, rows in triples
            },
        )

    def _executors(self, workers: int):
        """Lazily created, reusable thread/process pools (the process
        fallback path needs the thread pool too)."""
        import os

        if workers <= 0:
            workers = min(4, len(os.sched_getaffinity(0)) or 1)
        if self._executor_workers and workers > self._executor_workers:
            self._shutdown_executors()
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="corpus-fanout"
            )
            self._executor_workers = workers
        if self._process_pool is None:
            try:
                self._process_pool = ProcessPoolExecutor(max_workers=workers)
            except (OSError, ValueError):
                self._process_pool = None
        return self._thread_pool, self._process_pool

    def _shutdown_executors(self) -> None:
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None
        self._executor_workers = 0

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        self._shutdown_executors()
        if self._owns_pool:
            self._pool.close()

    def __enter__(self) -> "Corpus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "CollectionPlan",
    "CollectionResult",
    "Corpus",
    "split_collection_expression",
]
