"""FLWOR queries over Extended XPath — the paper's XQuery extension.

The demo paper notes *"an XQuery extension and implementation is under
development"*; this module provides that layer: ``for``/``let``/
``where``/``order by``/``return`` over Extended XPath expressions
(including the concurrent-markup axes and ``$variable`` references).

Example — which words does each damage region cut across, per line::

    for $d in //dmg
    for $w in $d/overlapping::w
    where span-length($w) > 3
    order by start($w)
    return concat(string($w), ' @', hierarchy($w))

Scope: XQuery's full data model (element constructors, sequences of
mixed types, modules) is out; the subset here covers the query shapes
the paper's demonstration runs — cross-hierarchy joins and reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .core.goddag import GoddagDocument
from .errors import XPathSyntaxError
from .xpath.ast import Expr
from .xpath.evaluator import Evaluator
from .xpath.optimizer import optimize
from .xpath.parser import parse_xpath
from .xpath.tokens import DOLLAR, EOF, LBRACKET, LPAREN, NAME, RBRACKET, RPAREN, tokenize

#: Clause-introducing keywords (recognized at bracket depth 0 only).
_KEYWORDS = ("for", "let", "where", "order", "return", "stable")


@dataclass(frozen=True)
class ForClause:
    variable: str
    source: Expr


@dataclass(frozen=True)
class LetClause:
    variable: str
    value: Expr


@dataclass(frozen=True)
class WhereClause:
    condition: Expr


@dataclass(frozen=True)
class OrderClause:
    key: Expr
    descending: bool = False


@dataclass(frozen=True)
class FlworQuery:
    """A parsed FLWOR query."""

    clauses: tuple
    returns: Expr


def _clause_slices(source: str) -> list[tuple[str, str]]:
    """Split the query into (keyword, body-text) pairs.

    Keywords are recognized only at parenthesis/bracket depth zero, so
    a ``for`` inside a predicate never starts a clause.
    """
    tokens = tokenize(source)
    boundaries: list[tuple[str, int, int]] = []  # (keyword, kw_pos, body_start)
    depth = 0
    index = 0
    while tokens[index].kind != EOF:
        token = tokens[index]
        if token.kind in (LPAREN, LBRACKET):
            depth += 1
        elif token.kind in (RPAREN, RBRACKET):
            depth -= 1
        elif (
            depth == 0
            and token.kind == NAME
            and token.value in _KEYWORDS
            # not preceded by '$' (a variable named 'for' is the user's
            # own problem, but do the cheap check anyway)
            and (index == 0 or tokens[index - 1].kind != DOLLAR)
        ):
            keyword = token.value
            body_start = tokens[index + 1].position if tokens[index + 1].kind != EOF \
                else len(source)
            if keyword == "order":
                nxt = tokens[index + 1]
                if not (nxt.kind == NAME and nxt.value == "by"):
                    raise XPathSyntaxError(
                        "expected 'by' after 'order'", position=token.position,
                        expression=source,
                    )
                body_start = tokens[index + 2].position if tokens[index + 2].kind != EOF \
                    else len(source)
                index += 1
            elif keyword == "stable":
                index += 1
                continue
            boundaries.append((keyword, token.position, body_start))
        index += 1
    if not boundaries:
        raise XPathSyntaxError("a FLWOR query needs clauses", expression=source)
    slices: list[tuple[str, str]] = []
    for i, (keyword, _, body_start) in enumerate(boundaries):
        body_end = boundaries[i + 1][1] if i + 1 < len(boundaries) else len(source)
        slices.append((keyword, source[body_start:body_end].strip()))
    return slices


def _parse_for_body(body: str) -> list[ForClause]:
    """``$x in expr, $y in expr ...`` — split on top-level commas."""
    clauses: list[ForClause] = []
    for part in _split_top_level_commas(body):
        part = part.strip()
        if not part.startswith("$"):
            raise XPathSyntaxError(f"for-clause must bind a $variable: {part!r}")
        name, _, rest = part[1:].partition(" ")
        rest = rest.strip()
        if not rest.startswith("in ") and not rest.startswith("in\n"):
            raise XPathSyntaxError(f"expected 'in' in for-clause: {part!r}")
        clauses.append(
            ForClause(name.strip(), optimize(parse_xpath(rest[2:].strip())))
        )
    return clauses


def _parse_let_body(body: str) -> LetClause:
    body = body.strip()
    if not body.startswith("$"):
        raise XPathSyntaxError(f"let-clause must bind a $variable: {body!r}")
    name, sep, rest = body[1:].partition(":=")
    if not sep:
        raise XPathSyntaxError(f"expected ':=' in let-clause: {body!r}")
    return LetClause(name.strip(), optimize(parse_xpath(rest.strip())))


def _split_top_level_commas(body: str) -> Iterator[str]:
    depth = 0
    start = 0
    for i, ch in enumerate(body):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "," and depth == 0:
            yield body[start:i]
            start = i + 1
    yield body[start:]


def parse_xquery(source: str) -> FlworQuery:
    """Parse a FLWOR query string."""
    clauses: list = []
    returns: Expr | None = None
    for keyword, body in _clause_slices(source):
        if returns is not None:
            raise XPathSyntaxError("clauses after 'return'", expression=source)
        if keyword == "for":
            clauses.extend(_parse_for_body(body))
        elif keyword == "let":
            clauses.append(_parse_let_body(body))
        elif keyword == "where":
            clauses.append(WhereClause(optimize(parse_xpath(body))))
        elif keyword == "order":
            descending = False
            stripped = body.strip()
            for suffix in ("descending", "ascending"):
                if stripped.endswith(suffix):
                    descending = suffix == "descending"
                    stripped = stripped[: -len(suffix)].strip()
            clauses.append(
                OrderClause(optimize(parse_xpath(stripped)), descending)
            )
        elif keyword == "return":
            returns = optimize(parse_xpath(body))
    if returns is None:
        raise XPathSyntaxError("missing 'return' clause", expression=source)
    if not any(isinstance(c, (ForClause, LetClause)) for c in clauses):
        raise XPathSyntaxError("a FLWOR query needs a 'for' or 'let' clause")
    return FlworQuery(tuple(clauses), returns)


class XQuery:
    """A compiled FLWOR query, reusable across documents."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.query = parse_xquery(source)

    def evaluate(self, document: GoddagDocument) -> list:
        """Run the query; returns the list of `return`-clause values.

        A node-valued binding is presented to downstream expressions as
        a singleton node-set, so ``$x/child::w`` works as expected.
        Per FLWOR semantics, ``order by`` sorts the *whole* tuple
        stream before the return clause runs.
        """
        from .xpath.evaluator import Context

        evaluator = Evaluator(document)
        flow = [c for c in self.query.clauses if not isinstance(c, OrderClause)]
        orders = [c for c in self.query.clauses if isinstance(c, OrderClause)]
        tuples: list[dict] = []

        def run(clause_index: int, bindings: dict) -> None:
            if clause_index == len(flow):
                tuples.append(dict(bindings))
                return
            clause = flow[clause_index]
            if isinstance(clause, ForClause):
                value = evaluator.evaluate(clause.source, None, bindings)
                items = value if isinstance(value, list) else [value]
                for item in items:
                    inner = dict(bindings)
                    inner[clause.variable] = (
                        [item] if not isinstance(item, (str, float, bool))
                        else item
                    )
                    run(clause_index + 1, inner)
            elif isinstance(clause, LetClause):
                inner = dict(bindings)
                inner[clause.variable] = evaluator.evaluate(
                    clause.value, None, bindings
                )
                run(clause_index + 1, inner)
            else:  # WhereClause
                value = evaluator.evaluate(clause.condition, None, bindings)
                if Context(None, 1, 1, document, bindings).to_boolean(value):
                    run(clause_index + 1, bindings)

        run(0, {})

        coerce = Context(None, 1, 1, document, {})
        for order in reversed(orders):  # stable sorts compose left-to-right

            def sort_key(env, _order=order):
                value = evaluator.evaluate(_order.key, None, env)
                if isinstance(value, list):
                    value = coerce.to_string(value)
                return (isinstance(value, str), value)

            tuples.sort(key=sort_key, reverse=order.descending)

        return [
            evaluator.evaluate(self.query.returns, None, env) for env in tuples
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XQuery({self.source!r})"


def xquery(document: GoddagDocument, source: str) -> list:
    """One-shot FLWOR evaluation."""
    return XQuery(source).evaluate(document)
