"""Exporter: single document with TEI-style milestones.

One *primary* hierarchy keeps its real element structure (it nests
properly by construction); every element of every other hierarchy is
demoted to a pair of empty marker elements
``<tag sacx-ms="start" sacx-mid="N"/> ... <tag sacx-ms="end" sacx-mid="N"/>``.
Genuine zero-width elements export as plain empty tags.

The inverse driver is :func:`repro.sacx.milestones.parse_milestones`.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.goddag import GoddagDocument
from ..core.node import Element
from ..errors import SerializationError
from ..sacx.reserved import (
    HIERARCHY_ATTR,
    MILESTONE_ID_ATTR,
    MILESTONE_KIND_ATTR,
)
from .writer import XmlWriter


def export_milestones(
    document: GoddagDocument,
    primary: str | None = None,
    hierarchy_attr: bool = True,
) -> str:
    """Serialize the GODDAG with ``primary`` inline, the rest as markers.

    ``primary`` defaults to the first (rank 0) hierarchy.
    """
    names = document.hierarchy_names()
    if not names:
        raise SerializationError("document has no hierarchies to serialize")
    if primary is None:
        primary = names[0]
    if primary not in names:
        raise SerializationError(f"unknown primary hierarchy {primary!r}")
    rank = {name: i for i, name in enumerate(names)}

    inline_starts: dict[int, list[Element]] = defaultdict(list)
    marker_starts: dict[int, list[Element]] = defaultdict(list)
    marker_ends: dict[int, list[Element]] = defaultdict(list)
    empties_at: dict[int, list[Element]] = defaultdict(list)
    for element in document.elements():
        if element.is_empty:
            empties_at[element.start].append(element)
        elif element.hierarchy == primary:
            inline_starts[element.start].append(element)
        else:
            marker_starts[element.start].append(element)
            marker_ends[element.end].append(element)

    writer = XmlWriter()
    writer.start_tag(document.root.tag, document.root.attributes)
    stack: list[Element] = []
    boundaries = document.spans.boundaries

    def marker_attributes(element: Element, kind: str) -> dict[str, str]:
        attributes = dict(element.attributes) if kind == "start" else {}
        attributes[MILESTONE_KIND_ATTR] = kind
        attributes[MILESTONE_ID_ATTR] = str(element.ordinal)
        if hierarchy_attr:
            attributes[HIERARCHY_ATTR] = element.hierarchy
        return attributes

    for index, position in enumerate(boundaries):
        # 1. Close inline elements ending here (innermost first — they
        #    nest, so they are exactly the top of the stack).
        while stack and stack[-1].end == position:
            stack.pop()
            writer.end_tag()
        # 2. End markers (innermost-start last opened closes first, a
        #    cosmetic pseudo-nesting order).
        for element in sorted(marker_ends.get(position, ()),
                              key=lambda e: (e.start, rank[e.hierarchy], e.ordinal),
                              reverse=True):
            writer.empty_tag(element.tag, marker_attributes(element, "end"))
        # 3. Genuine zero-width elements anchored here.
        for element in sorted(empties_at.get(position, ()),
                              key=lambda e: e.ordinal):
            attributes = dict(element.attributes)
            if hierarchy_attr:
                attributes[HIERARCHY_ATTR] = element.hierarchy
            writer.empty_tag(element.tag, attributes)
        # 4. Start markers, longest span first.
        for element in sorted(marker_starts.get(position, ()),
                              key=lambda e: (-e.end, rank[e.hierarchy], e.ordinal)):
            writer.empty_tag(element.tag, marker_attributes(element, "start"))
        # 5. Open inline elements, longest first (they nest).
        for element in sorted(inline_starts.get(position, ()),
                              key=lambda e: (-e.end, e.ordinal)):
            attributes = dict(element.attributes)
            if hierarchy_attr:
                attributes[HIERARCHY_ATTR] = element.hierarchy
            writer.start_tag(element.tag, attributes)
            stack.append(element)
        # 6. Leaf text.
        if index + 1 < len(boundaries):
            writer.text(document.text[position : boundaries[index + 1]])

    writer.end_tag()
    return writer.getvalue()


def milestone_count(document: GoddagDocument, primary: str | None = None) -> int:
    """How many marker elements the milestone export emits.

    Two per demoted element — the paper's point about this
    representation: the DOM tree of the export bears no resemblance to
    the markup semantics, and all structure of the secondary
    hierarchies must be reconstructed by pairing markers.
    """
    names = document.hierarchy_names()
    if primary is None:
        primary = names[0] if names else ""
    return 2 * sum(
        1
        for element in document.elements()
        if not element.is_empty and element.hierarchy != primary
    )
