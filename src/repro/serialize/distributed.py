"""Exporter: distributed documents (one XML document per hierarchy).

The inverse of :func:`repro.sacx.distributed.parse_distributed`.  Every
hierarchy serializes to a stand-alone well-formed document carrying the
full text; uncovered text appears directly under the root.
"""

from __future__ import annotations

from ..core.goddag import GoddagDocument
from ..core.node import Element
from .writer import XmlWriter


def serialize_hierarchy(document: GoddagDocument, hierarchy: str) -> str:
    """Serialize one hierarchy of the GODDAG as a well-formed document."""
    writer = XmlWriter()
    writer.start_tag(document.root.tag, document.root.attributes)
    position = 0
    for element in document.top_level(hierarchy):
        if element.start > position:
            writer.text(document.text[position : element.start])
        _write_element(document, element, writer)
        position = max(position, element.end)
    writer.text(document.text[position :])
    writer.end_tag()
    return writer.getvalue()


def _write_element(document: GoddagDocument, element: Element,
                   writer: XmlWriter) -> None:
    if element.is_empty:
        writer.empty_tag(element.tag, element.attributes)
        return
    writer.start_tag(element.tag, element.attributes)
    position = element.start
    for child in element.element_children:
        if child.start > position:
            writer.text(document.text[position : child.start])
        _write_element(document, child, writer)
        position = max(position, child.end)
    writer.text(document.text[position : element.end])
    writer.end_tag()


def export_distributed(document: GoddagDocument) -> dict[str, str]:
    """Serialize every hierarchy: ``{hierarchy_name: xml_source}``."""
    return {
        name: serialize_hierarchy(document, name)
        for name in document.hierarchy_names()
    }
