"""Low-level XML writing: escaping, tags, canonical attribute order."""

from __future__ import annotations

from typing import Iterable, Mapping

from .._util import escape_attribute, escape_text


class XmlWriter:
    """Accumulates a well-formed XML string.

    Attributes are written in sorted name order so output is canonical:
    two structurally equal documents serialize identically, which the
    round-trip tests rely on.  No pretty-printing is ever inserted
    inside the root element — whitespace is content in document-centric
    XML.
    """

    def __init__(self) -> None:
        self._parts: list[str] = []
        self._stack: list[str] = []

    def start_tag(self, tag: str, attributes: Mapping[str, str] | None = None) -> None:
        self._parts.append(f"<{tag}{_render_attributes(attributes)}>")
        self._stack.append(tag)

    def end_tag(self) -> None:
        tag = self._stack.pop()
        self._parts.append(f"</{tag}>")

    def empty_tag(self, tag: str, attributes: Mapping[str, str] | None = None) -> None:
        self._parts.append(f"<{tag}{_render_attributes(attributes)}/>")

    def text(self, content: str) -> None:
        if content:
            self._parts.append(escape_text(content))

    def comment(self, content: str) -> None:
        self._parts.append(f"<!--{content}-->")

    def getvalue(self) -> str:
        if self._stack:
            raise ValueError(f"unclosed tags: {self._stack}")
        return "".join(self._parts)


def _render_attributes(attributes: Mapping[str, str] | None) -> str:
    if not attributes:
        return ""
    return "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in sorted(attributes.items())
    )


def render_element(tag: str, attributes: Mapping[str, str] | None,
                   content: Iterable[str]) -> str:
    """One-shot element rendering used by small utilities."""
    inner = "".join(content)
    if not inner:
        return f"<{tag}{_render_attributes(attributes)}/>"
    return f"<{tag}{_render_attributes(attributes)}>{inner}</{tag}>"
