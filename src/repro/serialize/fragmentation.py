"""Exporter: single document with TEI-style fragmentation.

All hierarchies are flattened into one well-formed XML document.  Where
markup conflicts, the element opened earlier (in document order) is
*split*: its current fragment closes, the conflicting boundary is
honoured, and a new fragment reopens immediately.  Fragments of one
logical element share a ``sacx-fid`` group id and carry ``sacx-part``
markers (``I``/``M``/``F`` — initial, medial, final, after the TEI
``part`` attribute convention).

The sweep is the classic overlap-serialization algorithm: walk the leaf
boundaries; at each boundary close what ends (force-closing and
remembering anything stacked above it), then open what begins, longest
span first.  The number of fragments produced is sensitive to that
"longest first" heuristic, which minimizes splits for nested starts.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.goddag import GoddagDocument
from ..core.node import Element
from ..errors import SerializationError
from ..sacx.reserved import (
    FRAGMENT_ID_ATTR,
    FRAGMENT_PART_ATTR,
    HIERARCHY_ATTR,
)
from .writer import XmlWriter

#: Op kinds of the sweep plan.
_OPEN, _CLOSE, _TEXT, _EMPTY = "open", "close", "text", "empty"


def fragmentation_plan(
    document: GoddagDocument,
) -> tuple[list[tuple], dict[Element, int]]:
    """Compute the write plan and per-element fragment counts.

    Returns ``(ops, piece_counts)`` where ops is a sequence of
    ``("open", element) / ("close", element) / ("empty", element) /
    ("text", string)`` and ``piece_counts[e]`` is the number of
    fragments element ``e`` was split into (1 = intact).

    Exposed separately from :func:`export_fragmentation` because the
    benchmarks measure plan size (fragment blow-up) directly.
    """
    rank = {name: i for i, name in enumerate(document.hierarchy_names())}
    solids: list[Element] = []
    starts_at: dict[int, list[Element]] = defaultdict(list)
    ends_at: dict[int, set[Element]] = defaultdict(set)
    empties_at: dict[int, list[Element]] = defaultdict(list)
    for element in document.elements():
        if element.is_empty:
            empties_at[element.start].append(element)
        else:
            solids.append(element)
            starts_at[element.start].append(element)
            ends_at[element.end].add(element)

    ops: list[tuple] = []
    stack: list[Element] = []
    piece_counts: dict[Element, int] = defaultdict(int)
    boundaries = document.spans.boundaries

    for index, position in enumerate(boundaries):
        # 1. Close everything that ends here; force-split whatever is
        #    stacked above it.
        ending = set(ends_at.get(position, ()))
        reopen: list[Element] = []
        while ending:
            top = stack.pop()
            ops.append((_CLOSE, top))
            if top in ending:
                ending.discard(top)
            else:
                reopen.append(top)
        # 2. Zero-width elements anchored here.
        for element in sorted(empties_at.get(position, ()),
                              key=lambda e: e.ordinal):
            ops.append((_EMPTY, element))
        # 3. Open new elements and reopen split ones, longest span first.
        to_open = starts_at.get(position, []) + reopen
        to_open.sort(key=lambda e: (-e.end, rank[e.hierarchy], e.ordinal))
        for element in to_open:
            ops.append((_OPEN, element))
            piece_counts[element] += 1
            stack.append(element)
        # 4. The text of the leaf starting here.
        if index + 1 < len(boundaries):
            ops.append((_TEXT, document.text[position : boundaries[index + 1]]))

    if stack:  # pragma: no cover - guarded by document invariants
        raise SerializationError(f"sweep left elements open: {stack!r}")
    for element in solids:
        piece_counts.setdefault(element, 0)
    return ops, dict(piece_counts)


def export_fragmentation(
    document: GoddagDocument, hierarchy_attr: bool = True
) -> str:
    """Serialize the whole GODDAG into one fragmented document."""
    ops, piece_counts = fragmentation_plan(document)
    fragment_ids: dict[Element, str] = {}
    next_id = 1
    for element, count in piece_counts.items():
        if count > 1:
            fragment_ids[element] = str(next_id)
            next_id += 1

    writer = XmlWriter()
    writer.start_tag(document.root.tag, document.root.attributes)
    emitted: dict[Element, int] = defaultdict(int)
    for op in ops:
        kind = op[0]
        if kind == _TEXT:
            writer.text(op[1])
            continue
        element = op[1]
        if kind == _CLOSE:
            writer.end_tag()
            continue
        attributes = dict(element.attributes)
        if hierarchy_attr:
            attributes[HIERARCHY_ATTR] = element.hierarchy
        if kind == _EMPTY:
            writer.empty_tag(element.tag, attributes)
            continue
        if element in fragment_ids:
            attributes[FRAGMENT_ID_ATTR] = fragment_ids[element]
            emitted[element] += 1
            if emitted[element] == 1:
                attributes[FRAGMENT_PART_ATTR] = "I"
            elif emitted[element] == piece_counts[element]:
                attributes[FRAGMENT_PART_ATTR] = "F"
            else:
                attributes[FRAGMENT_PART_ATTR] = "M"
        writer.start_tag(element.tag, attributes)
    writer.end_tag()
    return writer.getvalue()


def fragment_blowup(document: GoddagDocument) -> float:
    """Ratio of emitted fragments to logical solid elements.

    1.0 means no overlap forced any split; the paper's motivation is
    precisely that this ratio grows with concurrent markup density.
    """
    _, piece_counts = fragmentation_plan(document)
    solid = [count for count in piece_counts.values() if count]
    if not solid:
        return 1.0
    return sum(solid) / len(solid)
