"""Exporters: GODDAG → every supported concurrent-markup representation.

The manipulation layer of the demo ("concurrent XML can be imported
into/exported from our software suite from/to a wide range of
representations"): distributed documents, TEI-style fragmentation,
TEI-style milestones, and standoff JSON (the latter lives with its
import driver in :mod:`repro.sacx.standoff` and is re-exported here).
"""

from ..sacx.standoff import export_standoff, standoff_dict
from .distributed import export_distributed, serialize_hierarchy
from .fragmentation import (
    export_fragmentation,
    fragment_blowup,
    fragmentation_plan,
)
from .milestones import export_milestones, milestone_count
from .writer import XmlWriter, render_element

__all__ = [
    "XmlWriter",
    "export_distributed",
    "export_fragmentation",
    "export_milestones",
    "export_standoff",
    "fragment_blowup",
    "fragmentation_plan",
    "milestone_count",
    "render_element",
    "serialize_hierarchy",
    "standoff_dict",
]
