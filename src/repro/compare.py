"""Structural comparison of GODDAG documents.

Round-tripping a document through any representation must preserve its
structure — but two corner conventions make naive equality too strict:

* zero-width elements are re-placed by the offset rule (deepest element
  covering the anchor) whenever a document passes through an
  offset-based path;
* builder ordinals differ between originals and reimports.

:func:`canonical_form` therefore normalizes a document by rebuilding it
from its standoff listing (which applies the offset rule uniformly) and
returns the rebuilt document's standoff dictionary — a deterministic,
hashable-free structure two documents can be compared by.
"""

from __future__ import annotations

from .core.goddag import GoddagDocument
from .sacx.standoff import parse_standoff, standoff_dict


def canonical_form(document: GoddagDocument) -> dict:
    """A canonical, comparison-ready structure for ``document``.

    Hierarchy blocks are sorted by name: importing a single-document
    representation discovers hierarchies in first-encounter order, so
    rank is a presentation detail, not structure.
    """
    rebuilt = parse_standoff(standoff_dict(document))
    form = standoff_dict(rebuilt)
    form["hierarchies"].sort(key=lambda block: block["name"])
    return form


def documents_isomorphic(a: GoddagDocument, b: GoddagDocument) -> bool:
    """True when the two documents have the same text, hierarchies, and
    markup structure (up to the normalizations documented above)."""
    return canonical_form(a) == canonical_form(b)


def describe_difference(a: GoddagDocument, b: GoddagDocument) -> str:
    """Human-readable first difference between two documents (or '')."""
    ca, cb = canonical_form(a), canonical_form(b)
    if ca == cb:
        return ""
    if ca["text"] != cb["text"]:
        return "texts differ"
    if ca["root"] != cb["root"]:
        return f"roots differ: {ca['root']} vs {cb['root']}"
    names_a = [h["name"] for h in ca["hierarchies"]]
    names_b = [h["name"] for h in cb["hierarchies"]]
    if names_a != names_b:
        return f"hierarchies differ: {names_a} vs {names_b}"
    for block_a, block_b in zip(ca["hierarchies"], cb["hierarchies"]):
        if block_a != block_b:
            seen_a = {
                (x["tag"], x["start"], x["end"]) for x in block_a["annotations"]
            }
            seen_b = {
                (x["tag"], x["start"], x["end"]) for x in block_b["annotations"]
            }
            only_a = sorted(seen_a - seen_b)
            only_b = sorted(seen_b - seen_a)
            return (
                f"hierarchy {block_a['name']!r} differs; "
                f"only in first: {only_a[:5]}; only in second: {only_b[:5]}"
            )
    return "documents differ in attribute details"
