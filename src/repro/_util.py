"""Small shared helpers used across the library."""

from __future__ import annotations

import sys
from array import array
from typing import Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")


# The persisted index formats (GIDX1 sidecars, sqlite blobs) are defined
# as little-endian u32; Python only guarantees array("I") a *minimum* of
# 2 bytes, so pick whichever code is exactly 4 bytes on this platform.
for _code in ("I", "L"):
    if array(_code).itemsize == 4:
        _U32 = _code
        break
else:  # pragma: no cover - no 4-byte unsigned type
    raise ImportError("no 4-byte unsigned array type on this platform")


def pack_u32(values) -> bytes:
    """Pack an iterable of ints as little-endian u32 bytes."""
    if isinstance(values, array) and values.typecode == _U32:
        packed = values
    else:
        packed = array(_U32, values)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts
        packed = array(_U32, packed)
        packed.byteswap()
    return packed.tobytes()


def unpack_u32(data: bytes) -> list[int]:
    """Inverse of :func:`pack_u32`."""
    packed = array(_U32)
    packed.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts
        packed.byteswap()
    return packed.tolist()


def stable_unique(items: Iterable[T]) -> list[T]:
    """Return ``items`` with duplicates removed, preserving first-seen order.

    Works for hashable items only; nodes of the GODDAG are hashable by
    identity, which is the equality the library wants.
    """
    seen: set[T] = set()
    out: list[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def pairwise(items: Sequence[T]) -> Iterator[tuple[T, T]]:
    """Yield consecutive pairs ``(items[i], items[i+1])``."""
    for i in range(len(items) - 1):
        yield items[i], items[i + 1]


def escape_text(text: str) -> str:
    """Escape character data for inclusion in XML content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(text: str) -> str:
    """Escape an attribute value for inclusion in a double-quoted literal."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def unescape(text: str) -> str:
    """Resolve the five predefined XML entities and numeric references."""
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        semi = text.find(";", i + 1)
        if semi == -1:
            out.append(ch)
            i += 1
            continue
        entity = text[i + 1 : semi]
        if entity == "amp":
            out.append("&")
        elif entity == "lt":
            out.append("<")
        elif entity == "gt":
            out.append(">")
        elif entity == "quot":
            out.append('"')
        elif entity == "apos":
            out.append("'")
        elif entity.startswith("#x") or entity.startswith("#X"):
            out.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            out.append(chr(int(entity[1:])))
        else:
            # Unknown entity: leave it verbatim, the scanner reports it.
            out.append(text[i : semi + 1])
        i = semi + 1
    return "".join(out)


def is_name_start_char(ch: str) -> bool:
    """True for characters that may start an XML name (ASCII subset + letters)."""
    return ch.isalpha() or ch in (":", "_")


def is_name_char(ch: str) -> bool:
    """True for characters that may continue an XML name."""
    return ch.isalnum() or ch in (":", "_", "-", ".")
