"""Hierarchy filtering — partial views and exports of a GODDAG.

The demo's *filtering feature for partially viewing and/or exporting a
subset of document encodings*: project hierarchies, drop tags, or cut a
text range out of the document, producing a new, fully independent
GODDAG that every exporter and the query engine accept.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..core.goddag import GoddagBuilder, GoddagDocument
from ..errors import FilterError  # noqa: F401  (re-export convenience)


def project(
    document: GoddagDocument, hierarchies: Iterable[str]
) -> GoddagDocument:
    """A new document containing only the chosen hierarchies.

    The text and the chosen hierarchies' markup are copied verbatim;
    leaf boundaries contributed by dropped hierarchies disappear.
    """
    names = list(hierarchies)
    for name in names:
        document.hierarchy(name)  # raises HierarchyError for unknowns
    builder = GoddagBuilder(document.text, document.root.tag)
    for name in names:
        builder.add_hierarchy(name, dtd=document.hierarchy(name).dtd)
        for element in document.elements(hierarchy=name):
            builder.add_annotation(
                name, element.tag, element.start, element.end,
                element.attributes,
            )
    projected = builder.build()
    projected.root.attributes.update(document.root.attributes)
    return projected


def filter_tags(
    document: GoddagDocument,
    keep: Callable[[str], bool] | Iterable[str],
) -> GoddagDocument:
    """A new document keeping only elements whose tag passes ``keep``.

    Dropped elements splice their children up, exactly like interactive
    removal.  ``keep`` is a predicate or a collection of tag names.
    """
    if not callable(keep):
        allowed = frozenset(keep)
        keep = allowed.__contains__
    builder = GoddagBuilder(document.text, document.root.tag)
    for name in document.hierarchy_names():
        builder.add_hierarchy(name, dtd=document.hierarchy(name).dtd)
        for element in document.elements(hierarchy=name):
            if keep(element.tag):
                builder.add_annotation(
                    name, element.tag, element.start, element.end,
                    element.attributes,
                )
    filtered = builder.build()
    filtered.root.attributes.update(document.root.attributes)
    return filtered


#: Marker attribute recording that an element was clipped by extraction.
CLIP_ATTR = "sacx-clipped"


def extract_range(
    document: GoddagDocument, start: int, end: int
) -> GoddagDocument:
    """A new document containing the text ``[start, end)`` and every
    element intersecting it.

    Elements straddling the cut are clipped to the window and marked
    with ``sacx-clipped="start"/"end"/"both"`` so consumers can tell a
    physical line that genuinely ends here from one the extraction cut.
    Zero-width elements inside the window are kept.
    """
    if not (0 <= start <= end <= document.length):
        raise FilterError(
            f"extraction window [{start},{end}) outside document of "
            f"length {document.length}"
        )
    builder = GoddagBuilder(document.text[start:end], document.root.tag)
    for name in document.hierarchy_names():
        builder.add_hierarchy(name, dtd=document.hierarchy(name).dtd)
        for element in document.elements(hierarchy=name):
            if element.is_empty:
                if start <= element.start < end:
                    builder.add_annotation(
                        name, element.tag,
                        element.start - start, element.start - start,
                        element.attributes,
                    )
                continue
            clipped_start = max(element.start, start)
            clipped_end = min(element.end, end)
            if clipped_start >= clipped_end:
                continue
            attributes = dict(element.attributes)
            cut_left = element.start < start
            cut_right = element.end > end
            if cut_left and cut_right:
                attributes[CLIP_ATTR] = "both"
            elif cut_left:
                attributes[CLIP_ATTR] = "start"
            elif cut_right:
                attributes[CLIP_ATTR] = "end"
            builder.add_annotation(
                name, element.tag,
                clipped_start - start, clipped_end - start, attributes,
            )
    extracted = builder.build()
    extracted.root.attributes.update(document.root.attributes)
    return extracted
