"""Filtering: partial views and exports of multihierarchical documents."""

from .filter import CLIP_ATTR, extract_range, filter_tags, project

__all__ = ["CLIP_ATTR", "extract_range", "filter_tags", "project"]
