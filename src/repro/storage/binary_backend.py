"""A struct-packed single-file store for one GODDAG document.

Format (versioned magic, little-endian):

.. code-block:: text

    GDAG1\\n
    u32 header_length     | JSON header: name, root_tag, root_attributes,
                          |   hierarchies [{name, dtd_source}], tag pool,
                          |   element_count, text_bytes, attrs_bytes
    text (UTF-8)
    element records       | element_count × '<IHHIIII' :
                          |   elem_id, hierarchy_idx, tag_idx, start, end,
                          |   parent_id, attrs_offset (into the JSON-lines
                          |   attribute blob; 0xFFFFFFFF = no attributes)
    attribute blob        | newline-separated JSON objects

``elem_id`` is the element's *persistent identity* — its birth ordinal
in the GODDAG core — and ``parent_id`` the parent's (0 = shared root),
so binary round-trips preserve identity exactly like the sqlite rows
do.  Records are written in per-hierarchy preorder and sibling rank is
carried by that *record order* within each parent (ids themselves are
not rank: an element born late in an editing session keeps its high
ordinal wherever it nests).  Artifacts written before ids were
identity-stable encode per-save preorder numbers instead; loading one
simply adopts those numbers as the ordinals, so old files stay fully
readable.

The element table is fixed-width, so :func:`scan_spans` can answer span
queries — and :func:`read_element` keyed handle lookups — by reading
the header + table only, the storage-level access of experiment E7
without SQLite.  Index sidecars (``.gidx``) are managed by the store
facade: ``GoddagStore.save_indexed`` re-stamps the sidecar from the
index manager's in-memory payload alongside each document write, so an
editing session never pays a load-and-rebuild to keep it fresh.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path

from ..core.goddag import GoddagDocument
from ..errors import StorageError
from ..obs.metrics import metrics
from .schema import decode_document, encode_document, DocumentRow, HierarchyRow, ElementRow

_MAGIC = b"GDAG1\n"
_RECORD = struct.Struct("<IHHIIII")
_NO_ATTRS = 0xFFFFFFFF


@dataclass(frozen=True)
class BinaryHeader:
    name: str
    root_tag: str
    root_attributes: dict[str, str]
    hierarchies: list[dict[str, str]]
    tags: list[str]
    element_count: int
    text_bytes: int
    attrs_bytes: int
    #: True when the record table is strictly increasing in ``elem_id``,
    #: letting :func:`read_element` bisect the fixed-width table with
    #: O(log n) seeks instead of scanning every record.  Records are in
    #: per-hierarchy preorder, so this holds for freshly built documents
    #: but not necessarily after edits (a late-born element keeps its
    #: high ordinal wherever it nests); the writer checks and records
    #: the truth.  Files written before the flag existed default to
    #: False and keep the scan path — old artifacts stay readable.
    ids_sorted: bool = False


def save_file(document: GoddagDocument, path: str | Path, name: str = "") -> None:
    """Write ``document`` to ``path`` in the GDAG1 format."""
    doc_row, hierarchy_rows, element_rows = encode_document(
        document, name or str(path)
    )
    metrics.incr("storage.binary_saves")
    metrics.incr("storage.rows_rewritten", len(element_rows))
    hierarchy_index = {row.name: i for i, row in enumerate(hierarchy_rows)}
    tags: list[str] = []
    tag_index: dict[str, int] = {}
    for row in element_rows:
        if row.tag not in tag_index:
            tag_index[row.tag] = len(tags)
            tags.append(row.tag)

    attr_blob_parts: list[bytes] = []
    attr_offsets: list[int] = []
    blob_size = 0
    for row in element_rows:
        if row.attributes == "{}":
            attr_offsets.append(_NO_ATTRS)
            continue
        encoded = row.attributes.encode("utf-8") + b"\n"
        attr_offsets.append(blob_size)
        attr_blob_parts.append(encoded)
        blob_size += len(encoded)

    text_bytes = doc_row.text.encode("utf-8")
    header = BinaryHeader(
        name=doc_row.name,
        root_tag=doc_row.root_tag,
        root_attributes=json.loads(doc_row.root_attributes),
        hierarchies=[
            {"name": row.name, "dtd_source": row.dtd_source}
            for row in hierarchy_rows
        ],
        tags=tags,
        element_count=len(element_rows),
        text_bytes=len(text_bytes),
        attrs_bytes=blob_size,
        ids_sorted=all(
            element_rows[i].elem_id < element_rows[i + 1].elem_id
            for i in range(len(element_rows) - 1)
        ),
    )
    header_bytes = json.dumps(header.__dict__, sort_keys=True).encode("utf-8")

    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<I", len(header_bytes)))
        fh.write(header_bytes)
        fh.write(text_bytes)
        for row, attrs_offset in zip(element_rows, attr_offsets):
            fh.write(
                _RECORD.pack(
                    row.elem_id,
                    hierarchy_index[row.hierarchy],
                    tag_index[row.tag],
                    row.start,
                    row.end,
                    row.parent_id,
                    attrs_offset,
                )
            )
        for part in attr_blob_parts:
            fh.write(part)


def _read_header(fh) -> BinaryHeader:
    magic = fh.read(len(_MAGIC))
    if magic != _MAGIC:
        raise StorageError(f"not a GDAG1 file (magic {magic!r})")
    (header_length,) = struct.unpack("<I", fh.read(4))
    data = json.loads(fh.read(header_length).decode("utf-8"))
    return BinaryHeader(**data)


def load_file(path: str | Path) -> GoddagDocument:
    """Read a GDAG1 file back into a GODDAG."""
    with open(path, "rb") as fh:
        header = _read_header(fh)
        text = fh.read(header.text_bytes).decode("utf-8")
        table = fh.read(header.element_count * _RECORD.size)
        blob = fh.read(header.attrs_bytes)

    doc_row = DocumentRow(
        header.name, header.root_tag, text,
        json.dumps(header.root_attributes, sort_keys=True),
    )
    hierarchy_rows = [
        HierarchyRow(rank, item["name"], item["dtd_source"])
        for rank, item in enumerate(header.hierarchies)
    ]
    element_rows: list[ElementRow] = []
    # Child ranks are implicit in *record order* within each parent (the
    # writer emits per-hierarchy preorder; ids are birth ordinals and
    # need not be monotone in document position after edits).
    sibling_counters: dict[int, int] = {}
    for record in _RECORD.iter_unpack(table):
        elem_id, h_idx, tag_idx, start, end, parent_id, attrs_offset = record
        if attrs_offset == _NO_ATTRS:
            attributes = "{}"
        else:
            end_index = blob.index(b"\n", attrs_offset)
            attributes = blob[attrs_offset:end_index].decode("utf-8")
        rank = sibling_counters.get(parent_id, 0)
        sibling_counters[parent_id] = rank + 1
        element_rows.append(
            ElementRow(
                elem_id,
                header.hierarchies[h_idx]["name"],
                header.tags[tag_idx],
                start, end, parent_id, rank, attributes,
            )
        )
    return decode_document(doc_row, hierarchy_rows, element_rows)


def read_text(path: str | Path) -> str:
    """The document text alone: header + text region, element table and
    attribute blob untouched."""
    with open(path, "rb") as fh:
        header = _read_header(fh)
        return fh.read(header.text_bytes).decode("utf-8")


def scan_spans(
    path: str | Path, start: int, end: int
) -> list[tuple[str, str, int, int]]:
    """Storage-level span query: solid elements intersecting [start, end).

    Reads only the header and the fixed-width element table — the text
    and attribute blob are skipped — and returns ``(hierarchy, tag,
    start, end)`` tuples.
    """
    with open(path, "rb") as fh:
        header = _read_header(fh)
        fh.seek(header.text_bytes, 1)  # skip the text
        table = fh.read(header.element_count * _RECORD.size)
    out: list[tuple[str, str, int, int]] = []
    for record in _RECORD.iter_unpack(table):
        _, h_idx, tag_idx, elem_start, elem_end, _, _ = record
        if elem_start < end and elem_end > start:
            out.append(
                (
                    header.hierarchies[h_idx]["name"],
                    header.tags[tag_idx],
                    elem_start,
                    elem_end,
                )
            )
    return out


def read_element(
    path: str | Path, elem_id: int
) -> tuple[str, str, int, int, dict[str, str]] | None:
    """Resolve a persistent element id against the stored table.

    Returns ``(hierarchy, tag, start, end, attributes)`` for the record
    whose ``elem_id`` matches, or ``None`` — the binary backend's half
    of the cross-session node handle (``GoddagStore.element``).

    When the header records a strictly id-sorted table
    (``ids_sorted``), the lookup bisects the fixed-width records with
    O(log n) seek-and-unpack probes instead of reading the whole table
    — the single-handle access stops being O(rows).  Tables written
    unsorted (edited documents, pre-flag files) keep the full scan.
    Either way only the matching record's attribute line is read from
    the blob; the text region is skipped and no document is
    materialized.
    """
    with open(path, "rb") as fh:
        header = _read_header(fh)
        table_start = fh.tell() + header.text_bytes
        attrs_start = table_start + header.element_count * _RECORD.size
        if header.ids_sorted:
            metrics.incr("storage.element_probe.bisect")
            lo, hi = 0, header.element_count - 1
            while lo <= hi:
                mid = (lo + hi) // 2
                fh.seek(table_start + mid * _RECORD.size)
                record = _RECORD.unpack(fh.read(_RECORD.size))
                if record[0] == elem_id:
                    return _record_handle(fh, header, attrs_start, record)
                if record[0] < elem_id:
                    lo = mid + 1
                else:
                    hi = mid - 1
            return None
        metrics.incr("storage.element_probe.scan")
        fh.seek(table_start)
        table = fh.read(header.element_count * _RECORD.size)
        for record in _RECORD.iter_unpack(table):
            if record[0] == elem_id:
                return _record_handle(fh, header, attrs_start, record)
    return None


def _record_handle(
    fh, header: BinaryHeader, attrs_start: int, record: tuple
) -> tuple[str, str, int, int, dict[str, str]]:
    """Materialize one unpacked record into the ``read_element`` result,
    fetching its attribute line from the blob by absolute offset."""
    _, h_idx, tag_idx, start, end, _, attrs_offset = record
    attributes: dict[str, str] = {}
    if attrs_offset != _NO_ATTRS:
        fh.seek(attrs_start + attrs_offset)
        encoded = fh.read(header.attrs_bytes - attrs_offset)
        attributes = json.loads(
            encoded[: encoded.index(b"\n")].decode("utf-8")
        )
    return (
        header.hierarchies[h_idx]["name"],
        header.tags[tag_idx],
        start,
        end,
        attributes,
    )


def file_stats(path: str | Path) -> dict[str, int]:
    """Size accounting of a GDAG1 file (used by the E8 bench report)."""
    with open(path, "rb") as fh:
        header = _read_header(fh)
    total = Path(path).stat().st_size
    return {
        "total_bytes": total,
        "text_bytes": header.text_bytes,
        "element_bytes": header.element_count * _RECORD.size,
        "attrs_bytes": header.attrs_bytes,
        "elements": header.element_count,
    }
