"""The relational encoding of a GODDAG.

The paper lists persistent storage as work underway; this package
builds it.  The encoding is the natural one: the shared text is stored
once, hierarchies are rows, and every element is a row carrying its
span, its parent element id, and its rank among its siblings — enough
to reconstruct the GODDAG exactly (including zero-width placement and
equal-span nesting, which spans alone cannot recover).

``elem_id`` is the element's birth ordinal — the *stable persistent
identity* of the GODDAG core.  It round-trips: :func:`decode_document`
reconstructs every element under its stored ordinal (and the fresh
ordinal counter resumes past the loaded maximum), so ``save → load →
save`` re-emits identical ids and row-level delta saves can key element
upserts by ``(doc_id, elem_id)``.  The root is element id 0 by
convention; ``parent_id`` is the parent's ordinal.  For documents that
were never edited, ordinals coincide with the per-hierarchy preorder
numbering older artifacts stored — which is exactly why loading such an
artifact adopts its ids unchanged ("backfill by adoption").  After
edits, ids are *not* preorder (a late-born wrapper has a larger ordinal
than the children it adopted), and nothing here relies on that anymore.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..core.goddag import GoddagBuilder, GoddagDocument
from ..core.node import Element
from ..dtd.parser import parse_dtd
from ..errors import StorageError

#: parent_id of top-level elements.
ROOT_ID = 0


@dataclass(frozen=True)
class DocumentRow:
    name: str
    root_tag: str
    text: str
    root_attributes: str  # JSON object


@dataclass(frozen=True)
class HierarchyRow:
    rank: int
    name: str
    dtd_source: str  # '' when the hierarchy has no DTD


@dataclass(frozen=True)
class ElementRow:
    elem_id: int
    hierarchy: str
    tag: str
    start: int
    end: int
    parent_id: int
    child_rank: int
    attributes: str  # JSON object


def encode_document(
    document: GoddagDocument, name: str
) -> tuple[DocumentRow, list[HierarchyRow], list[ElementRow]]:
    """Flatten a GODDAG into relational rows."""
    doc_row = DocumentRow(
        name=name,
        root_tag=document.root.tag,
        text=document.text,
        root_attributes=json.dumps(document.root.attributes, sort_keys=True),
    )
    hierarchy_rows = []
    for rank, hierarchy_name in enumerate(document.hierarchy_names()):
        hierarchy = document.hierarchy(hierarchy_name)
        dtd_source = hierarchy.dtd.to_source() if hierarchy.dtd else ""
        hierarchy_rows.append(HierarchyRow(rank, hierarchy_name, dtd_source))

    element_rows: list[ElementRow] = []

    def emit(element: Element, parent_id: int, child_rank: int) -> None:
        element_rows.append(
            ElementRow(
                elem_id=element.ordinal,
                hierarchy=element.hierarchy,
                tag=element.tag,
                start=element.start,
                end=element.end,
                parent_id=parent_id,
                child_rank=child_rank,
                attributes=json.dumps(element.attributes, sort_keys=True),
            )
        )
        for rank, child in enumerate(element.element_children):
            emit(child, element.ordinal, rank)

    for hierarchy_name in document.hierarchy_names():
        for rank, top in enumerate(document.top_level(hierarchy_name)):
            emit(top, ROOT_ID, rank)
    return doc_row, hierarchy_rows, element_rows


def element_row(
    element: Element,
    parent_id: int | None = None,
    child_rank: int | None = None,
) -> ElementRow:
    """The relational row of one live element, from its current state.

    The single-element counterpart of :func:`encode_document`, used by
    the journal-driven row upserts: ``elem_id`` is the element's birth
    ordinal, ``parent_id`` the parent's (``ROOT_ID`` at top level), and
    ``child_rank`` the element's position in its current sibling list —
    for top-level elements, the rank within their hierarchy's top-level
    sequence, matching the full encoder exactly.  Callers that already
    know the placement (the coalescer's container enumeration) pass
    both hints and skip the sibling-list scan.
    """
    if parent_id is None or child_rank is None:
        parent = element.parent
        if parent.is_root:
            parent_id = ROOT_ID
            siblings: tuple[Element, ...] = element.document.top_level(
                element.hierarchy
            )
        else:
            parent_id = parent.ordinal
            siblings = parent.element_children
        try:
            child_rank = siblings.index(element)
        except ValueError:
            raise StorageError(
                f"element {element!r} is not attached to its document"
            ) from None
    return ElementRow(
        elem_id=element.ordinal,
        hierarchy=element.hierarchy,
        tag=element.tag,
        start=element.start,
        end=element.end,
        parent_id=parent_id,
        child_rank=child_rank,
        attributes=json.dumps(element.attributes, sort_keys=True),
    )


def decode_document(
    doc_row: DocumentRow,
    hierarchy_rows: list[HierarchyRow],
    element_rows: list[ElementRow],
) -> GoddagDocument:
    """Rebuild a GODDAG from its relational rows.

    Rebuilding uses the builder's event interface driven by an explicit
    parent/child-rank walk, so nesting (including equal spans and
    zero-width placement) is restored exactly as stored.  Every element
    is reconstructed under its stored ``elem_id`` as its birth ordinal —
    the persistent-identity half of the round-trip contract — and the
    builder resumes the fresh-ordinal counter past the loaded maximum,
    so post-load edits never collide with persisted ids.
    """
    builder = GoddagBuilder(doc_row.text, doc_row.root_tag)
    dtds = {}
    for row in sorted(hierarchy_rows, key=lambda r: r.rank):
        dtd = parse_dtd(row.dtd_source, name=row.name) if row.dtd_source else None
        builder.add_hierarchy(row.name, dtd=dtd)
        dtds[row.name] = dtd

    children: dict[int, list[ElementRow]] = {}
    for row in element_rows:
        children.setdefault(row.parent_id, []).append(row)
    for rows in children.values():
        rows.sort(key=lambda r: r.child_rank)

    by_id = {row.elem_id: row for row in element_rows}
    for row in element_rows:
        if row.parent_id != ROOT_ID and row.parent_id not in by_id:
            raise StorageError(
                f"element {row.elem_id} references missing parent "
                f"{row.parent_id}"
            )

    def replay(row: ElementRow) -> None:
        attributes = json.loads(row.attributes)
        if row.start == row.end:
            builder.empty_element(row.hierarchy, row.tag, row.start,
                                  attributes, ordinal=row.elem_id)
            for child in children.get(row.elem_id, ()):  # pragma: no cover
                raise StorageError(
                    f"zero-width element {row.elem_id} has children"
                )
            return
        builder.start_element(row.hierarchy, row.tag, row.start, attributes,
                              ordinal=row.elem_id)
        for child in children.get(row.elem_id, ()):
            replay(child)
        builder.end_element(row.hierarchy, row.tag, row.end)

    # Top-level rows must replay grouped by hierarchy (the builder keeps
    # one open-element stack per hierarchy, so grouping is not required
    # for correctness, only for readable event order).
    for row in children.get(ROOT_ID, ()):
        replay(row)

    document = builder.build()
    document.root.attributes.update(json.loads(doc_row.root_attributes))
    return document
