"""The storage facade: one API over both backends.

``GoddagStore`` is what applications use: save/load by name, list, and
storage-level queries, with the backend chosen at construction
(``sqlite`` for multi-document stores with SQL-side queries, ``binary``
for one-file-per-document archives with table scans).
"""

from __future__ import annotations

from pathlib import Path

from ..core.goddag import GoddagDocument
from ..errors import StorageError
from .binary_backend import file_stats, load_file, save_file, scan_spans
from .sqlite_backend import SqliteStore, StoredElement


class GoddagStore:
    """Persistent storage for GODDAG documents."""

    def __init__(self, location: str | Path = ":memory:",
                 backend: str = "sqlite") -> None:
        if backend not in ("sqlite", "binary"):
            raise StorageError(f"unknown backend {backend!r}")
        self.backend = backend
        self.location = location
        if backend == "sqlite":
            self._sqlite: SqliteStore | None = SqliteStore(str(location))
        else:
            self._sqlite = None
            self._directory = Path(location)
            if str(location) == ":memory:":
                raise StorageError("the binary backend needs a directory")
            self._directory.mkdir(parents=True, exist_ok=True)

    # -- helpers -----------------------------------------------------------------

    def _file(self, name: str) -> Path:
        return self._directory / f"{name}.gdag"

    def close(self) -> None:
        if self._sqlite is not None:
            self._sqlite.close()

    def __enter__(self) -> "GoddagStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- save / load / list -----------------------------------------------------------

    def save(self, document: GoddagDocument, name: str,
             overwrite: bool = False) -> None:
        if self._sqlite is not None:
            self._sqlite.save(document, name, overwrite=overwrite)
            return
        target = self._file(name)
        if target.exists() and not overwrite:
            raise StorageError(f"document {name!r} already stored")
        save_file(document, target, name)

    def load(self, name: str) -> GoddagDocument:
        if self._sqlite is not None:
            return self._sqlite.load(name)
        target = self._file(name)
        if not target.exists():
            raise StorageError(f"no stored document {name!r}")
        return load_file(target)

    def delete(self, name: str) -> None:
        if self._sqlite is not None:
            self._sqlite.delete(name)
            return
        target = self._file(name)
        if not target.exists():
            raise StorageError(f"no stored document {name!r}")
        target.unlink()

    def names(self) -> list[str]:
        if self._sqlite is not None:
            return self._sqlite.names()
        return sorted(path.stem for path in self._directory.glob("*.gdag"))

    def has(self, name: str) -> bool:
        if self._sqlite is not None:
            return self._sqlite.has(name)
        return self._file(name).exists()

    # -- storage-level queries -----------------------------------------------------------

    def elements_intersecting(
        self, name: str, start: int, end: int
    ) -> list[tuple[str, str, int, int]]:
        """Solid elements intersecting a span, without reconstruction."""
        if self._sqlite is not None:
            return [
                (e.hierarchy, e.tag, e.start, e.end)
                for e in self._sqlite.elements_intersecting(name, start, end)
                if e.start < e.end
            ]
        return scan_spans(self._file(name), start, end)

    def count_elements(self, name: str, tag: str | None = None) -> int:
        if self._sqlite is not None:
            return self._sqlite.count_elements(name, tag)
        document = self.load(name)
        if tag is None:
            return document.element_count()
        return sum(1 for _ in document.elements(tag=tag))

    def overlapping_pairs(self, name: str, tag_a: str, tag_b: str):
        """Overlap join in storage (sqlite backend only)."""
        if self._sqlite is None:
            raise StorageError(
                "overlap joins need the sqlite backend; the binary "
                "backend loads and queries in memory instead"
            )
        return self._sqlite.overlapping_pairs(name, tag_a, tag_b)

    def stats(self, name: str) -> dict[str, int]:
        """Size accounting (binary backend) or row counts (sqlite)."""
        if self._sqlite is not None:
            return {"elements": self._sqlite.count_elements(name)}
        return file_stats(self._file(name))


__all__ = ["GoddagStore", "SqliteStore", "StoredElement"]
