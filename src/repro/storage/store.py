"""The storage facade: one API over both backends.

``GoddagStore`` is what applications use: save/load by name, list, and
storage-level queries, with the backend chosen at construction
(``sqlite`` for multi-document stores with SQL-side queries, ``binary``
for one-file-per-document archives with table scans).

Stored documents can carry *persisted indexes* (:meth:`GoddagStore.build_index`):
the sqlite backend keeps them in dedicated tables, the binary backend in
``.gidx`` sidecar files next to the document.  Index-aware queries —
:meth:`query_spans`, :meth:`term_occurrences`, :meth:`count_tag` — answer
from the persisted index when one exists (without materializing the
document) and fall back to the unindexed storage paths when it does not,
returning the same answers either way.  A plain :meth:`GoddagStore.save`
over (or delete of) a document drops its index; editing sessions use
:meth:`GoddagStore.save_indexed` instead, which re-saves the document
*and* propagates the index manager's applied deltas — sqlite row-level
upserts under a stable ``doc_id``, or a ``.gidx`` sidecar re-stamp — so
the stored index never invalidates wholesale.
"""

from __future__ import annotations

from pathlib import Path
from uuid import uuid4

from ..core.goddag import GoddagDocument
from ..errors import StorageError
from ..index.manager import IndexManager
from ..obs.metrics import metrics
from ..obs.trace import current_tracer
from ..index.overlap import OverlapIndex
from ..index.sidecar import (
    read_sidecar,
    read_sidecar_header,
    sidecar_path,
    write_sidecar,
)
from ..index.term import TermIndex, find_all
from .binary_backend import (
    file_stats,
    load_file,
    read_element,
    read_text,
    save_file,
    scan_spans,
)
from .sqlite_backend import SqliteStore, StoredElement


def _file_identity(path: Path) -> tuple[int, int] | None:
    """A cheap generation mark for a stored document file —
    ``(mtime_ns, size)``, or ``None`` when the file does not exist.
    Two writes of the same logical document produce different marks, so
    an editing session can tell its own artifact from a replacement."""
    try:
        stat = path.stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


class GoddagStore:
    """Persistent storage for GODDAG documents."""

    def __init__(self, location: str | Path = ":memory:",
                 backend: str = "sqlite") -> None:
        if backend not in ("sqlite", "binary"):
            raise StorageError(f"unknown backend {backend!r}")
        self.backend = backend
        self.location = location
        # Per-name cache of sidecar sections loaded for the binary
        # backend (the sqlite backend queries its tables directly).
        self._sidecars: dict[str, dict] = {}
        self._owns_backend = True
        if backend == "sqlite":
            self._sqlite: SqliteStore | None = SqliteStore(str(location))
        else:
            self._sqlite = None
            self._directory = Path(location)
            if str(location) == ":memory:":
                raise StorageError("the binary backend needs a directory")
            self._directory.mkdir(parents=True, exist_ok=True)

    @classmethod
    def over(cls, backend: SqliteStore) -> "GoddagStore":
        """The facade over an *existing* sqlite connection — typically
        one on loan from a
        :class:`~repro.storage.sqlite_backend.SqliteConnectionPool`.
        The wrapped connection stays the lender's to close:
        :meth:`close` on the returned store is a no-op, so releasing a
        pooled connection back is always safe afterwards."""
        store = cls.__new__(cls)
        store.backend = "sqlite"
        store.location = backend.path
        store._sidecars = {}
        store._owns_backend = False
        store._sqlite = backend
        return store

    # -- helpers -----------------------------------------------------------------

    def _file(self, name: str) -> Path:
        return self._directory / f"{name}.gdag"

    def _sidecar_file(self, name: str) -> Path:
        return sidecar_path(self._file(name))

    def close(self) -> None:
        if self._sqlite is not None and self._owns_backend:
            self._sqlite.close()

    def __enter__(self) -> "GoddagStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- save / load / list -----------------------------------------------------------

    def save(self, document: GoddagDocument, name: str,
             overwrite: bool = False) -> None:
        if self._sqlite is not None:
            # Overwriting replaces the document row; its index rows die
            # with the old doc_id (ON DELETE CASCADE).
            self._sqlite.save(document, name, overwrite=overwrite)
            return
        target = self._file(name)
        if target.exists() and not overwrite:
            raise StorageError(f"document {name!r} already stored")
        # A pre-existing sidecar indexed the overwritten content; drop
        # it *before* writing, so a crash mid-save can only lose the
        # index (queries fall back) — never pair a stale index with the
        # new document.
        self._invalidate_sidecar(name)
        save_file(document, target, name)

    def load(self, name: str) -> GoddagDocument:
        if self._sqlite is not None:
            return self._sqlite.load(name)
        target = self._file(name)
        if not target.exists():
            raise StorageError(f"no stored document {name!r}")
        return load_file(target)

    def delete(self, name: str) -> None:
        if self._sqlite is not None:
            self._sqlite.delete(name)
            return
        target = self._file(name)
        if not target.exists():
            raise StorageError(f"no stored document {name!r}")
        target.unlink()
        self._invalidate_sidecar(name)

    def names(self) -> list[str]:
        if self._sqlite is not None:
            return self._sqlite.names()
        return sorted(path.stem for path in self._directory.glob("*.gdag"))

    def has(self, name: str) -> bool:
        if self._sqlite is not None:
            return self._sqlite.has(name)
        return self._file(name).exists()

    # -- persisted indexes --------------------------------------------------------------

    def build_index(self, name: str) -> dict:
        """Build and persist the index for a stored document.

        Loads the document once, builds the four indexes (structural
        summary, term index, attribute postings, overlap index),
        persists them to the backend — sqlite tables or a ``.gidx``
        sidecar — and returns the size census.  Subsequent index-aware
        queries answer without loading the document again.
        """
        document = self.load(name)
        manager = IndexManager(document)
        payload = manager.payload(name)
        if self._sqlite is not None:
            self._sqlite.save_index(name, payload)
        else:
            write_sidecar(self._sidecar_file(name), payload)
            self._sidecars.pop(name, None)
        return manager.stats()

    def save_indexed(self, document: GoddagDocument, name: str,
                     manager: IndexManager | None = None,
                     overwrite: bool = False,
                     strict_stamp: bool = False) -> dict:
        """Save (or re-save) a document *and* keep its persisted index in
        step — the editing-session alternative to save + :meth:`build_index`.

        ``manager`` defaults to the document's attached index manager;
        it is refreshed (incrementally, when the delta journal allows)
        and its applied deltas propagate to the backend instead of
        invalidating the stored index wholesale:

        * **sqlite** — one transaction brings the stored rows in step
          under their existing ``doc_id``: when the manager can supply
          deltas *for this store and name*, the journal's coalesced
          :class:`~repro.core.changes.UpdateElementRow` set upserts and
          deletes exactly the element rows the session touched (keyed
          by persistent ``elem_id`` — an attribute-only edit writes
          O(1) rows) and the index rows are patched likewise; anything
          else (journal overflow, untracked mutations, foreign
          artifacts) takes a full rewrite.  Either way the transaction
          is atomic, so a crash can never pair a newer document with a
          stale index;
        * **binary** — the ``.gidx`` sidecar is re-stamped from the
          manager's in-memory payload, skipping the document load and
          index rebuild that :meth:`build_index` would pay.  (The
          sidecar is dropped before the document write, preserving the
          crash invariant of :meth:`save`: a stale index never pairs
          with a newer document.)

        Re-saving the session's own artifact — the exact generation this
        manager wrote last, verified via a stamp stored with the index
        (sqlite) or the document file's identity (binary) — needs no
        consent; anything else already stored under ``name`` (including
        a replacement some other writer slipped in mid-session) requires
        ``overwrite=True``, like :meth:`save`, and always gets a full
        index write rather than a row-level patch.

        ``strict_stamp=True`` (sqlite only) is the document service's
        publish contract: instead of demanding ``overwrite=True`` when
        the stored artifact is not this session's — or silently
        rewriting a racing writer's rows when the in-transaction stamp
        re-verification fails — the save raises the typed
        :class:`~repro.errors.WriteConflictError` and leaves the store
        exactly as the other writer published it.

        Returns the manager's size census, like :meth:`build_index`.
        """
        if manager is None:
            manager = document.index_manager
        if manager is None or manager.document is not document:
            raise StorageError(
                "save_indexed needs an IndexManager for this document "
                "(attach one, or pass manager=)"
            )
        tracer = current_tracer()
        if tracer is None:
            with metrics.time("storage.save"):
                self._save_indexed(document, name, manager, overwrite,
                                   strict_stamp)
        else:
            with tracer.span("save", document=name, backend=self.backend):
                with metrics.time("storage.save"):
                    self._save_indexed(document, name, manager, overwrite,
                                       strict_stamp)
        return manager.stats()

    def _save_indexed(self, document: GoddagDocument, name: str,
                      manager: IndexManager, overwrite: bool,
                      strict_stamp: bool = False) -> None:
        # The token pins delta accounting to one exact artifact
        # *generation*: deltas accumulated against another store,
        # another name, or an artifact someone replaced since our last
        # write never row-apply here.
        if self._sqlite is not None:
            exists = self._sqlite.has(name)
            generation = self._sqlite.index_stamp(name) if exists else None
            token = (self.backend, str(self.location), name, generation)
            deltas = manager.pending_persist(token)  # refreshes the manager
            if exists and not overwrite and not manager.persisted_to(token):
                if strict_stamp:
                    from ..errors import WriteConflictError

                    metrics.incr("service.conflicts")
                    raise WriteConflictError(
                        f"document {name!r} was published by another "
                        "writer during this session; nothing was written",
                        name=name, found=generation or "",
                    )
                raise StorageError(
                    f"document {name!r} already stored and is not this "
                    "session's artifact; pass overwrite=True to replace it"
                )
            stamp = uuid4().hex
            if exists:
                self._sqlite.resave_with_index(
                    document, name, deltas,
                    lambda hierarchy, path: [
                        (e.start, e.end)
                        for e in manager.structural.partition(hierarchy, path)
                    ],
                    lambda: manager.payload(name),
                    stamp=stamp,
                    expected_stamp=generation,
                    attr_spans=manager.attrs.spans,
                    strict_stamp=strict_stamp,
                )
            else:
                self._sqlite.save(document, name)
                self._sqlite.save_index(name, manager.payload(name), stamp)
            manager.mark_persisted(
                (self.backend, str(self.location), name, stamp)
            )
        else:
            target = self._file(name)
            generation = _file_identity(target)
            token = (self.backend, str(self.location), name, generation)
            manager.refresh()
            if (
                generation is not None
                and not overwrite
                and not manager.persisted_to(token)
            ):
                raise StorageError(
                    f"document {name!r} already stored and is not this "
                    "session's artifact; pass overwrite=True to replace it"
                )
            # The consent check above is check-then-write (no file
            # locking), but the write is a whole-artifact rewrite:
            # losing the race can only clobber a concurrent writer's
            # document wholesale (as plain save(overwrite=True) can) —
            # never pair our deltas with a stranger's index.
            self._invalidate_sidecar(name)
            save_file(document, target, name)
            write_sidecar(self._sidecar_file(name), manager.payload(name))
            metrics.incr("storage.sidecar_restamps")
            manager.mark_persisted(
                (self.backend, str(self.location), name,
                 _file_identity(target))
            )

    def save_stream(self, sources, name: str, *, overwrite: bool = False,
                    chunk_elements: int = 1024,
                    chunk_chars: int = 1 << 16) -> str:
        """Stream-parse a distributed document straight into storage.

        The bounded-memory counterpart of ``parse_concurrent`` +
        :meth:`save_indexed`: ``sources`` maps hierarchy names to XML
        sources (strings, paths, open files, or zero-argument factories
        returning fresh chunk iterators — the scan makes two passes),
        and the stored rows — document, elements, and the full persisted
        index — are byte-identical to the materialized path.  On the
        sqlite backend the write proceeds in chunked transactions while
        the SACX merge runs (see :func:`repro.streaming.ingest
        .stream_save`), never holding the whole document; readers see
        nothing under ``name`` until the final rename publishes it.

        The binary backend has no row-level surface to stream into, so
        it materializes — reported on the ``storage.stream_save``
        fallback metric — then saves and indexes as usual.

        Returns the index generation stamp (sqlite; ``""`` on the
        binary fallback).
        """
        if self._sqlite is not None:
            from ..streaming.ingest import stream_save

            return stream_save(
                self._sqlite, sources, name, overwrite=overwrite,
                chunk_elements=chunk_elements, chunk_chars=chunk_chars,
            )
        from ..obs import fallback as _obs_fallback
        from ..streaming.parse import parse_streaming

        _obs_fallback("storage.stream_save", "backend-unsupported",
                      f"binary backend materializes {name!r}")
        document = parse_streaming(sources, chunk_chars=chunk_chars)
        self.save(document, name, overwrite=overwrite)
        self.build_index(name)
        return ""

    def lazy(self, name: str):
        """An on-demand :class:`~repro.streaming.lazy.LazyDocument` view
        over a stored document — rows hydrate as queries touch them,
        nothing is materialized up front.  Sqlite backend only: the
        binary format is a sequential archive with no keyed row access.
        """
        if self._sqlite is None:
            raise StorageError(
                "lazy loading needs the sqlite backend "
                "(the binary archive has no row-level access)"
            )
        from ..streaming.lazy import LazyDocument

        return LazyDocument(self._sqlite, name)

    def has_index(self, name: str) -> bool:
        """True when a persisted index exists for ``name``."""
        if self._sqlite is not None:
            return self._sqlite.has_index(name)
        if not self._file(name).exists():
            raise StorageError(f"no stored document {name!r}")
        return self._sidecar_file(name).exists()

    def drop_index(self, name: str) -> None:
        """Remove the persisted index (the document itself is untouched)."""
        if self._sqlite is not None:
            self._sqlite.drop_index(name)
            return
        if not self._file(name).exists():
            raise StorageError(f"no stored document {name!r}")
        self._invalidate_sidecar(name)

    def _invalidate_sidecar(self, name: str) -> None:
        self._sidecars.pop(name, None)
        sidecar = self._sidecar_file(name)
        if sidecar.exists():
            sidecar.unlink()

    def _sidecar_section(self, name: str, section: str):
        """A lazily loaded, cached sidecar section (binary backend).

        The cache is stamped with the sidecar file's ``(mtime, size)``
        so another store (or process) rewriting the document and its
        index on the same directory cannot leave this one serving stale
        sections.  Any read failure — the sidecar dropped between our
        ``has_index`` and the read, a crashed write left it short —
        surfaces as the module's usual :class:`StorageError`.
        """
        sidecar = self._sidecar_file(name)
        try:
            stat = sidecar.stat()
        except OSError as exc:
            self._sidecars.pop(name, None)
            raise StorageError(
                f"cannot read the index sidecar of {name!r}: {exc}"
            ) from exc
        stamp = (stat.st_mtime_ns, stat.st_size)
        cached = self._sidecars.get(name)
        if cached is None or cached.get("stamp") != stamp:
            cached = {"stamp": stamp}
            self._sidecars[name] = cached
        if section not in cached:
            try:
                if section == "header":
                    payload = read_sidecar_header(sidecar)
                else:
                    payload = read_sidecar(sidecar, sections=(section,))
            except OSError as exc:
                self._sidecars.pop(name, None)
                raise StorageError(
                    f"cannot read the index sidecar of {name!r}: {exc}"
                ) from exc
            except StorageError as exc:
                self._sidecars.pop(name, None)
                raise StorageError(
                    f"{exc} — drop_index({name!r}) removes the bad "
                    "sidecar and restores unindexed queries"
                ) from exc
            if section == "overlap":
                cached[section] = OverlapIndex.from_payload(payload["overlap"])
            elif section == "terms":
                cached[section] = TermIndex.from_items(
                    payload["doc_length"], payload["terms"].items()
                )
            else:  # "header"
                cached[section] = payload
        return cached[section]

    # -- storage-level queries -----------------------------------------------------------

    def elements_intersecting(
        self, name: str, start: int, end: int
    ) -> list[tuple[str, str, int, int]]:
        """Solid elements intersecting a span, without reconstruction."""
        if self._sqlite is not None:
            return [
                (e.hierarchy, e.tag, e.start, e.end)
                for e in self._sqlite.elements_intersecting(name, start, end)
                if e.start < e.end
            ]
        return scan_spans(self._file(name), start, end)

    def element(self, name: str, elem_id: int) -> StoredElement | None:
        """Resolve a cross-session node handle without materializing
        the document.

        ``elem_id`` is the stable persistent identity of an element —
        its birth ordinal, :attr:`repro.core.node.Element.elem_id` —
        which both backends store and preserve across every save → load
        round trip.  Returns the element's stored state as a
        :class:`StoredElement` (one keyed SQL probe on sqlite, one
        fixed-width table scan on the binary backend), or ``None`` when
        no element with that id exists.  To resolve the handle against a
        materialized document instead, use
        :meth:`~repro.core.goddag.GoddagDocument.element_by_ordinal`.
        """
        if self._sqlite is not None:
            return self._sqlite.element(name, elem_id)
        target = self._file(name)
        if not target.exists():
            raise StorageError(f"no stored document {name!r}")
        found = read_element(target, elem_id)
        if found is None:
            return None
        hierarchy, tag, start, end, attributes = found
        return StoredElement(elem_id, hierarchy, tag, start, end, attributes)

    def query_spans(
        self, name: str, start: int, end: int
    ) -> list[tuple[str, str, int, int]]:
        """Index-aware span query: solid elements intersecting [start, end).

        With a persisted index the answer comes from the overlap index —
        an SQL range probe (sqlite) or an ``O(log n + k)`` interval query
        over the sidecar tables (binary) — without materializing the
        document.  Without one it falls back to
        :meth:`elements_intersecting`.  Either way the result is the
        same set, ordered by ``(start, -end, hierarchy, tag)``.
        """
        if self._sqlite is not None:
            hits = self._sqlite.index_overlap_query(name, start, end)
            if hits is not None:
                return hits  # the SQL ORDER BY emits this exact order
        elif self.has_index(name):
            overlap: OverlapIndex = self._sidecar_section(name, "overlap")
            return overlap.intersecting(start, end)  # sorted by contract
        # Unindexed fallback: the producers emit storage order, and the
        # binary scan reports zero-width anchors strictly inside the
        # window while the overlap index (like the sqlite facade) serves
        # solid elements only — filter and sort for identical answers.
        hits = [
            hit
            for hit in self.elements_intersecting(name, start, end)
            if hit[2] < hit[3]
        ]
        hits.sort(key=lambda hit: (hit[2], -hit[3], hit[0], hit[1]))
        return hits

    def term_occurrences(self, name: str, needle: str) -> list[int]:
        """Start offsets of ``needle`` in the stored text (sorted).

        Alphanumeric needles are answered from the persisted term index
        when one exists; other needles (or unindexed documents) scan the
        stored text — read on its own, never through a document
        reconstruction.
        """
        if TermIndex.is_indexable(needle):
            if self._sqlite is not None:
                occurrences = self._sqlite.index_term_occurrences(name, needle)
                if occurrences is not None:
                    return occurrences
            elif self.has_index(name):
                terms: TermIndex = self._sidecar_section(name, "terms")
                return terms.occurrences(needle)
        if self._sqlite is not None:
            return find_all(self._sqlite.text(name), needle)
        if not self._file(name).exists():
            raise StorageError(f"no stored document {name!r}")
        return find_all(read_text(self._file(name)), needle)

    def count_tag(self, name: str, tag: str) -> int:
        """Number of elements with ``tag``, via the structural summary
        when indexed (a metadata read) and a storage count otherwise."""
        if self._sqlite is not None:
            count = self._sqlite.index_tag_count(name, tag)
            if count is not None:
                return count
        elif self.has_index(name):
            # Populations live in the header's partition rows
            # (hierarchy, path, tag, count, offset) — no region I/O.
            header = self._sidecar_section(name, "header")
            return sum(
                row[3] for row in header["path_rows"] if row[2] == tag
            )
        return self.count_elements(name, tag)

    def count_attribute(self, name: str, attr: str, value: str) -> int:
        """Number of elements with attribute ``attr`` = ``value``.

        With a persisted format-2 index the answer comes from the
        attribute posting rows (sqlite) or the sidecar header's posting
        populations (binary) — a metadata read, no document
        materialization.  Older or missing indexes fall back to a
        storage scan (sqlite: element-row attribute JSON; binary: one
        document load).  The shared root's attributes are not counted —
        attribute postings index elements, matching the in-memory
        :class:`~repro.index.term.AttributeIndex`.
        """
        if self._sqlite is not None:
            count = self._sqlite.index_attr_count(name, attr, value)
            if count is not None:
                return count
            return self._sqlite.count_attribute_scan(name, attr, value)
        if self.has_index(name):
            header = self._sidecar_section(name, "header")
            rows = header.get("attr_rows")
            if rows is not None:  # format ≥ 2: populations live in the header
                return sum(
                    row[2] for row in rows
                    if row[0] == attr and row[1] == value
                )
        document = self.load(name)
        return sum(
            1
            for element in document.elements()
            if element.attributes.get(attr) == value
        )

    def count_elements(self, name: str, tag: str | None = None) -> int:
        if self._sqlite is not None:
            return self._sqlite.count_elements(name, tag)
        document = self.load(name)
        if tag is None:
            return document.element_count()
        return sum(1 for _ in document.elements(tag=tag))

    def overlapping_pairs(self, name: str, tag_a: str, tag_b: str):
        """Overlap join in storage (sqlite backend only)."""
        if self._sqlite is None:
            raise StorageError(
                "overlap joins need the sqlite backend; the binary "
                "backend loads and queries in memory instead"
            )
        return self._sqlite.overlapping_pairs(name, tag_a, tag_b)

    def stats(self, name: str | None = None) -> dict:
        """Stored-document counts in the unified ``repro-stats/1`` shape
        (see docs/ARCHITECTURE.md, Observability): element row count on
        sqlite, size accounting on the binary backend.  The old flat
        keys (``elements``, ``total_bytes``, ...) still answer for one
        release via the deprecation shim.

        ``name=None`` reports on the whole store instead: document and
        element-row totals plus the collection summary's size by
        feature family (sqlite), or document count and total bytes
        (binary) — the corpus-level view :meth:`repro.collection.Corpus.stats`
        serves over its pool.
        """
        from ..obs.stats import stats_dict

        if name is None:
            if self._sqlite is not None:
                raw = self._sqlite.corpus_counts()
                counts = {
                    f"collection.{key}": value for key, value in raw.items()
                }
            else:
                names = self.names()
                counts = {
                    "collection.documents": len(names),
                    "collection.total_bytes": sum(
                        file_stats(self._file(member))["total_bytes"]
                        for member in names
                    ),
                }
            return stats_dict(
                "storage.corpus", counts, backend=self.backend,
            )
        if self._sqlite is not None:
            raw = {"elements": self._sqlite.count_elements(name)}
        else:
            raw = file_stats(self._file(name))
        counts = {f"storage.{key}": value for key, value in raw.items()}
        aliases = {key: ("counts", f"storage.{key}") for key in raw}
        return stats_dict(
            "storage.store", counts, aliases=aliases,
            name=name, backend=self.backend,
        )


__all__ = ["GoddagStore", "SqliteStore", "StoredElement"]
