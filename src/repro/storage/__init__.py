"""Persistent storage for GODDAG documents (the paper's "underway" part).

Two backends behind one facade:

* SQLite — multi-document stores, SQL-side span/overlap queries;
* GDAG1 binary files — one document per file, fixed-width element table
  scannable without loading the document.
"""

from .binary_backend import file_stats, load_file, save_file, scan_spans
from .schema import (
    DocumentRow,
    ElementRow,
    HierarchyRow,
    ROOT_ID,
    decode_document,
    encode_document,
)
from .sqlite_backend import SqliteConnectionPool, SqliteStore, StoredElement
from .store import GoddagStore

__all__ = [
    "DocumentRow",
    "ElementRow",
    "GoddagStore",
    "HierarchyRow",
    "ROOT_ID",
    "SqliteConnectionPool",
    "SqliteStore",
    "StoredElement",
    "decode_document",
    "encode_document",
    "file_stats",
    "load_file",
    "save_file",
    "scan_spans",
]
