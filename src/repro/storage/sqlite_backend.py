"""SQLite-backed persistent store for GODDAG documents.

Stores the relational encoding of :mod:`repro.storage.schema` with the
indexes cross-hierarchy queries need, and answers span/tag/overlap
queries *in the database* — no document reconstruction — which is what
makes selective queries on large stored editions cheap (experiment E7).
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from uuid import uuid4

from .._util import pack_u32, unpack_u32
from ..core.goddag import GoddagDocument
from ..errors import PoolExhaustedError, StorageError, StoreBusyError, \
    WriteConflictError
from ..index.manager import PAYLOAD_FORMAT as STREAM_PAYLOAD_FORMAT
from ..index.structural import encode_path
from ..index.term import occurrences_from_terms
from ..obs import fallback as _obs_fallback
from ..obs.metrics import metrics
from ..obs.trace import current_tracer
from .schema import (
    DocumentRow,
    ElementRow,
    HierarchyRow,
    decode_document,
    encode_document,
    element_row,
)

_DDL = """
CREATE TABLE IF NOT EXISTS documents (
    doc_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE,
    root_tag TEXT NOT NULL,
    text TEXT NOT NULL,
    root_attributes TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS hierarchies (
    doc_id INTEGER NOT NULL REFERENCES documents(doc_id) ON DELETE CASCADE,
    rank INTEGER NOT NULL,
    name TEXT NOT NULL,
    dtd_source TEXT NOT NULL,
    PRIMARY KEY (doc_id, rank)
);
CREATE TABLE IF NOT EXISTS elements (
    doc_id INTEGER NOT NULL REFERENCES documents(doc_id) ON DELETE CASCADE,
    elem_id INTEGER NOT NULL,
    hierarchy TEXT NOT NULL,
    tag TEXT NOT NULL,
    start INTEGER NOT NULL,
    end INTEGER NOT NULL,
    parent_id INTEGER NOT NULL,
    child_rank INTEGER NOT NULL,
    attributes TEXT NOT NULL,
    PRIMARY KEY (doc_id, elem_id)
);
CREATE INDEX IF NOT EXISTS idx_elements_tag ON elements(doc_id, tag);
CREATE INDEX IF NOT EXISTS idx_elements_span ON elements(doc_id, start, end);
CREATE INDEX IF NOT EXISTS idx_elements_hierarchy
    ON elements(doc_id, hierarchy);
CREATE TABLE IF NOT EXISTS index_meta (
    doc_id INTEGER PRIMARY KEY REFERENCES documents(doc_id) ON DELETE CASCADE,
    format INTEGER NOT NULL,
    doc_length INTEGER NOT NULL,
    stamp TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS index_paths (
    doc_id INTEGER NOT NULL REFERENCES documents(doc_id) ON DELETE CASCADE,
    hierarchy TEXT NOT NULL,
    path TEXT NOT NULL,
    tag TEXT NOT NULL,
    n INTEGER NOT NULL,
    spans BLOB NOT NULL,
    PRIMARY KEY (doc_id, hierarchy, path)
);
CREATE TABLE IF NOT EXISTS index_terms (
    doc_id INTEGER NOT NULL REFERENCES documents(doc_id) ON DELETE CASCADE,
    term TEXT NOT NULL,
    starts BLOB NOT NULL,
    PRIMARY KEY (doc_id, term)
);
CREATE TABLE IF NOT EXISTS index_attrs (
    doc_id INTEGER NOT NULL REFERENCES documents(doc_id) ON DELETE CASCADE,
    name TEXT NOT NULL,
    value TEXT NOT NULL,
    n INTEGER NOT NULL,
    spans BLOB NOT NULL,
    PRIMARY KEY (doc_id, name, value)
);
CREATE TABLE IF NOT EXISTS index_overlap (
    doc_id INTEGER NOT NULL REFERENCES documents(doc_id) ON DELETE CASCADE,
    hierarchy TEXT NOT NULL,
    tag TEXT NOT NULL,
    start INTEGER NOT NULL,
    end INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_index_overlap_span
    ON index_overlap(doc_id, start, end);
CREATE INDEX IF NOT EXISTS idx_index_paths_tag
    ON index_paths(doc_id, tag);
CREATE TABLE IF NOT EXISTS collection_summary (
    doc_id INTEGER NOT NULL REFERENCES documents(doc_id) ON DELETE CASCADE,
    kind INTEGER NOT NULL,
    key TEXT NOT NULL,
    n INTEGER NOT NULL,
    PRIMARY KEY (kind, key, doc_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_collection_summary_doc
    ON collection_summary(doc_id, kind);
"""

#: Schema version recorded in ``PRAGMA user_version``.  Version 1 added
#: the ``collection_summary`` routing table; opening an older store
#: backfills it from the per-document index tables (see :meth:`_migrate`).
SCHEMA_VERSION = 1

#: ``collection_summary.kind`` values — the four feature families the
#: collection router consults (see :mod:`repro.collection.router`).
KIND_TAG = 0      # key = tag; n = elements with that tag
KIND_TERM = 1     # key = term-index token; n = occurrences
KIND_ATTR = 2     # key = encode_path((name, value)); n = posting length
KIND_PATH = 3     # key = encoded label path (hierarchy-agnostic); n = members

#: Reserved name prefix for in-flight streaming ingests.  A
#: :class:`StreamIngestSession` accumulates rows under a staging name
#: with this prefix; ``names()`` hides such rows and the next streaming
#: ingest reclaims any left behind by a crash, so a partially-written
#: document is never observable under its real name.
STAGING_PREFIX = "__repro_ingest__"


def collection_summary_rows(payload: dict) -> list[tuple[int, str, int]]:
    """The ``(kind, key, n)`` collection-summary rows of one document,
    derived from its ``IndexManager.payload()``.

    The same aggregation the row-level delta path recomputes in SQL
    (:meth:`SqliteStore._patch_collection_rows`): tag populations are
    label-path counts summed per tag, path populations are summed
    across hierarchies (routing has no hierarchy context), term rows
    carry posting lengths, and attribute rows the ``(name, value)``
    posting length under the injective :func:`~repro.index.structural.encode_path`
    key.  Keeping both producers aggregation-identical is what makes a
    delta-patched store byte-identical to a rebuilt one.
    """
    tags: dict[str, int] = {}
    paths: dict[str, int] = {}
    for _hierarchy, encoded, tag, count, _spans in payload.get("paths", []):
        tags[tag] = tags.get(tag, 0) + count
        paths[encoded] = paths.get(encoded, 0) + count
    rows = [(KIND_TAG, tag, n) for tag, n in tags.items()]
    rows.extend((KIND_PATH, encoded, n) for encoded, n in paths.items())
    rows.extend(
        (KIND_TERM, term, len(starts))
        for term, starts in payload.get("terms", {}).items()
    )
    rows.extend(
        (KIND_ATTR, encode_path((name, value)), count)
        for name, value, count, _spans in payload.get("attrs", [])
    )
    return rows


@dataclass(frozen=True)
class StoredElement:
    """A storage-level query result (no GODDAG node is materialized)."""

    elem_id: int
    hierarchy: str
    tag: str
    start: int
    end: int
    attributes: dict[str, str]


#: SQLITE_BUSY retry budget: total attempts per write transaction.
BUSY_RETRY_ATTEMPTS = 5

#: Base backoff before the first retry; doubles per attempt (so the
#: default schedule waits 10, 20, 40, 80 ms — bounded, never unbounded
#: spinning against a stuck writer).
BUSY_RETRY_BASE_S = 0.01


def _is_busy(exc: sqlite3.OperationalError) -> bool:
    """True for the SQLITE_BUSY / SQLITE_LOCKED family — transient
    contention worth retrying, as opposed to a real statement error."""
    message = str(exc).lower()
    return "locked" in message or "busy" in message


class SqliteStore:
    """A persistent multi-document GODDAG store on SQLite.

    One instance owns one connection.  The connection is created with
    ``check_same_thread=False`` so a :class:`SqliteConnectionPool` can
    hand it from thread to thread, but an instance is **not** itself
    thread-safe: at most one thread may use it at a time (the pool
    guarantees exclusive use between acquire and release).

    ``wal=True`` puts a file-backed database in write-ahead-log mode —
    the journal mode that lets readers on other connections proceed
    while one writer commits — and is what the concurrent document
    service (:mod:`repro.service`) runs under.  ``busy_timeout_ms``
    sets SQLite's own in-connection wait for a locked database; on top
    of it, every write transaction retries with bounded exponential
    backoff (``BUSY_RETRY_ATTEMPTS`` attempts) before surfacing a
    typed :class:`~repro.errors.StoreBusyError`, counting each retry on
    the ``storage.busy_retries`` metric and its wait on the
    ``storage.busy_backoff`` timer.
    """

    def __init__(self, path: str = ":memory:", *, wal: bool = False,
                 busy_timeout_ms: int = 5000) -> None:
        self.path = path
        self.busy_timeout_ms = busy_timeout_ms
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
        self.journal_mode = "memory" if path == ":memory:" else "delete"
        if wal:
            # WAL only takes on file-backed databases (an in-memory
            # database reports 'memory' and keeps working) — and once
            # set it is a property of the *file*, shared by every
            # connection.  synchronous=NORMAL is the documented safe
            # pairing: a crash can lose the tail of the WAL but never
            # corrupt the database.
            (self.journal_mode,) = self._conn.execute(
                "PRAGMA journal_mode = WAL"
            ).fetchone()
            self._conn.execute("PRAGMA synchronous = NORMAL")
        self._conn.executescript(_DDL)
        self._migrate()

    def _write_retry(self, operation, what: str):
        """Run one whole write transaction, retrying on SQLITE_BUSY.

        ``operation`` must be self-contained and idempotent-on-retry: it
        opens its own ``with self._conn:`` transaction, so a failed
        attempt is rolled back before the backoff sleep and the next
        attempt replays it from scratch.  Non-busy errors propagate
        untouched; exhausting the budget raises
        :class:`~repro.errors.StoreBusyError` with the attempt count.
        """
        attempt = 1
        while True:
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                if not _is_busy(exc):
                    raise
                if attempt >= BUSY_RETRY_ATTEMPTS:
                    raise StoreBusyError(
                        f"{what}: database still locked after "
                        f"{attempt} attempts ({exc})",
                        attempts=attempt,
                    ) from exc
                metrics.incr("storage.busy_retries")
                delay = BUSY_RETRY_BASE_S * (2 ** (attempt - 1))
                with metrics.time("storage.busy_backoff"):
                    time.sleep(delay)
                attempt += 1

    def _migrate(self) -> None:
        """Bring a store created by an older release up to the current
        schema (CREATE TABLE IF NOT EXISTS never alters existing
        tables).  Additive only: older columns are never dropped."""
        columns = [
            row[1]
            for row in self._conn.execute("PRAGMA table_info(index_meta)")
        ]
        if "stamp" not in columns:
            with self._conn:
                self._conn.execute(
                    "ALTER TABLE index_meta"
                    " ADD COLUMN stamp TEXT NOT NULL DEFAULT ''"
                )
        (version,) = self._conn.execute("PRAGMA user_version").fetchone()
        if version < SCHEMA_VERSION:
            self._backfill_collection_summary()

    def _backfill_collection_summary(self) -> None:
        """Populate ``collection_summary`` for a store written before
        schema version 1, from the per-document index tables already on
        disk — same aggregation as :func:`collection_summary_rows`, so a
        migrated store routes identically to a freshly built one.
        Without this, routing would treat every pre-collection indexed
        document as matching nothing and silently prune it."""
        def transaction() -> None:
            with self._conn:
                self._conn.execute("DELETE FROM collection_summary")
                self._conn.execute(
                    "INSERT INTO collection_summary"
                    " SELECT doc_id, ?, tag, SUM(n) FROM index_paths"
                    " GROUP BY doc_id, tag", (KIND_TAG,),
                )
                self._conn.execute(
                    "INSERT INTO collection_summary"
                    " SELECT doc_id, ?, path, SUM(n) FROM index_paths"
                    " GROUP BY doc_id, path", (KIND_PATH,),
                )
                self._conn.execute(
                    "INSERT INTO collection_summary"
                    " SELECT doc_id, ?, term, length(starts) / 4"
                    " FROM index_terms", (KIND_TERM,),
                )
                # Attribute keys need the injective python-side
                # encoding, so these rows go through a fetch loop.
                attr_rows = self._conn.execute(
                    "SELECT doc_id, name, value, n FROM index_attrs"
                ).fetchall()
                self._conn.executemany(
                    "INSERT INTO collection_summary VALUES (?, ?, ?, ?)",
                    [(doc_id, KIND_ATTR, encode_path((name, value)), n)
                     for doc_id, name, value, n in attr_rows],
                )
                self._conn.execute(
                    f"PRAGMA user_version = {int(SCHEMA_VERSION)}"
                )

        self._write_retry(transaction, "collection-summary backfill")

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- save / load ---------------------------------------------------------------

    def save(self, document: GoddagDocument, name: str,
             overwrite: bool = False) -> int:
        """Persist ``document`` under ``name``; returns its doc_id."""
        if self.has(name):
            if not overwrite:
                raise StorageError(f"document {name!r} already stored")
            self.delete(name)
        doc_row, hierarchy_rows, element_rows = encode_document(document, name)

        def transaction() -> int:
            with self._conn:
                cursor = self._conn.execute(
                    "INSERT INTO documents"
                    " (name, root_tag, text, root_attributes)"
                    " VALUES (?, ?, ?, ?)",
                    (doc_row.name, doc_row.root_tag, doc_row.text,
                     doc_row.root_attributes),
                )
                doc_id = cursor.lastrowid
                self._conn.executemany(
                    "INSERT INTO hierarchies VALUES (?, ?, ?, ?)",
                    [(doc_id, row.rank, row.name, row.dtd_source)
                     for row in hierarchy_rows],
                )
                self._conn.executemany(
                    "INSERT INTO elements VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    [(doc_id, row.elem_id, row.hierarchy, row.tag, row.start,
                      row.end, row.parent_id, row.child_rank, row.attributes)
                     for row in element_rows],
                )
                return doc_id

        return self._write_retry(transaction, f"save {name!r}")

    def load(self, name: str) -> GoddagDocument:
        """Reconstruct the full GODDAG for ``name``."""
        doc_id, doc_row = self._document_row(name)
        hierarchy_rows = [
            HierarchyRow(rank, hname, dtd)
            for rank, hname, dtd in self._conn.execute(
                "SELECT rank, name, dtd_source FROM hierarchies"
                " WHERE doc_id = ? ORDER BY rank", (doc_id,),
            )
        ]
        element_rows = [
            ElementRow(*row)
            for row in self._conn.execute(
                "SELECT elem_id, hierarchy, tag, start, end, parent_id,"
                " child_rank, attributes FROM elements"
                " WHERE doc_id = ? ORDER BY elem_id", (doc_id,),
            )
        ]
        return decode_document(doc_row, hierarchy_rows, element_rows)

    def delete(self, name: str) -> None:
        doc_id, _ = self._document_row(name)

        def transaction() -> None:
            with self._conn:
                self._conn.execute(
                    "DELETE FROM documents WHERE doc_id = ?", (doc_id,)
                )

        self._write_retry(transaction, f"delete {name!r}")

    def names(self) -> list[str]:
        """All stored document names (staging rows of in-flight
        streaming ingests excluded)."""
        return [
            name for (name,) in
            self._conn.execute(
                "SELECT name FROM documents WHERE name NOT GLOB ?"
                " ORDER BY name", (STAGING_PREFIX + "*",),
            )
        ]

    def has(self, name: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM documents WHERE name = ?", (name,)
        ).fetchone()
        return row is not None

    def _document_row(self, name: str) -> tuple[int, DocumentRow]:
        row = self._conn.execute(
            "SELECT doc_id, name, root_tag, text, root_attributes"
            " FROM documents WHERE name = ?", (name,),
        ).fetchone()
        if row is None:
            raise StorageError(f"no stored document {name!r}")
        doc_id, name, root_tag, text, root_attributes = row
        return doc_id, DocumentRow(name, root_tag, text, root_attributes)

    # -- storage-level queries (no reconstruction) --------------------------------------

    def count_elements(self, name: str, tag: str | None = None) -> int:
        doc_id, _ = self._document_row(name)
        if tag is None:
            query = "SELECT COUNT(*) FROM elements WHERE doc_id = ?"
            (count,) = self._conn.execute(query, (doc_id,)).fetchone()
        else:
            query = "SELECT COUNT(*) FROM elements WHERE doc_id = ? AND tag = ?"
            (count,) = self._conn.execute(query, (doc_id, tag)).fetchone()
        return count

    def elements_by_tag(self, name: str, tag: str) -> list[StoredElement]:
        doc_id, _ = self._document_row(name)
        return [
            _stored(row)
            for row in self._conn.execute(
                "SELECT elem_id, hierarchy, tag, start, end, attributes"
                " FROM elements WHERE doc_id = ? AND tag = ?"
                " ORDER BY start, end DESC", (doc_id, tag),
            )
        ]

    def elements_intersecting(
        self, name: str, start: int, end: int
    ) -> list[StoredElement]:
        """Solid elements sharing at least one character with [start, end)."""
        doc_id, _ = self._document_row(name)
        return [
            _stored(row)
            for row in self._conn.execute(
                "SELECT elem_id, hierarchy, tag, start, end, attributes"
                " FROM elements WHERE doc_id = ? AND start < ? AND end > ?"
                " ORDER BY start, end DESC", (doc_id, end, start),
            )
        ]

    def element(self, name: str, elem_id: int) -> StoredElement | None:
        """The element row with persistent id ``elem_id``, or ``None``.

        One keyed probe of the ``(doc_id, elem_id)`` primary key — the
        storage half of a cross-session node handle: an
        :attr:`~repro.core.node.Element.elem_id` observed in one session
        resolves here (or, materialized, via
        :meth:`~repro.core.goddag.GoddagDocument.element_by_ordinal`)
        in any later one.
        """
        doc_id, _ = self._document_row(name)
        row = self._conn.execute(
            "SELECT elem_id, hierarchy, tag, start, end, attributes"
            " FROM elements WHERE doc_id = ? AND elem_id = ?",
            (doc_id, elem_id),
        ).fetchone()
        return _stored(row) if row is not None else None

    def overlapping_pairs(
        self, name: str, tag_a: str, tag_b: str
    ) -> list[tuple[StoredElement, StoredElement]]:
        """All properly-overlapping (tag_a, tag_b) pairs, by SQL self-join."""
        doc_id, _ = self._document_row(name)
        rows = self._conn.execute(
            """
            SELECT a.elem_id, a.hierarchy, a.tag, a.start, a.end, a.attributes,
                   b.elem_id, b.hierarchy, b.tag, b.start, b.end, b.attributes
            FROM elements a JOIN elements b
              ON a.doc_id = b.doc_id
             AND a.start < b.end AND b.start < a.end
             AND NOT (a.start <= b.start AND b.end <= a.end)
             AND NOT (b.start <= a.start AND a.end <= b.end)
            WHERE a.doc_id = ? AND a.tag = ? AND b.tag = ?
              AND a.hierarchy != b.hierarchy
              AND a.start < a.end AND b.start < b.end
            """,
            (doc_id, tag_a, tag_b),
        ).fetchall()
        return [(_stored(row[:6]), _stored(row[6:])) for row in rows]

    def count_attribute_scan(self, name: str, attr: str, value: str) -> int:
        """Elements carrying ``attr`` = ``value``, by scanning the
        element rows' attribute JSON (the unindexed fallback; the shared
        root's attributes are not element rows and are not counted).

        The scan streams a dedicated cursor instead of materializing the
        document's attribute blobs, and pushes a cheap prefilter into
        SQL: only rows whose raw JSON contains both the encoded key
        token and the encoded value token are decoded at all.  The
        tokens are matched separately — never joined with a ``": "``
        separator, which is writer-dependent (``separators=(",", ":")``
        emits no space) — and each is truncated at the first non-ASCII
        character, whose escape depends on the writer's ``ensure_ascii``
        choice.  That keeps the prefilter complete for any JSON the
        standard encoder can have produced; it is not exact (a longer
        key shares the same token bytes), so each candidate is confirmed
        by one ``json.loads``.
        """
        doc_id, _ = self._document_row(name)
        cursor = self._conn.cursor()
        try:
            cursor.execute(
                "SELECT attributes FROM elements"
                " WHERE doc_id = ? AND attributes != '{}'"
                " AND instr(attributes, ?) > 0"
                " AND instr(attributes, ?) > 0",
                (doc_id, _json_token_prefix(attr),
                 _json_token_prefix(value)),
            )
            return sum(
                1 for (encoded,) in cursor
                if json.loads(encoded).get(attr) == value
            )
        finally:
            cursor.close()

    def text(self, name: str) -> str:
        """The full document text, without reconstructing any element."""
        _, row = self._document_row(name)
        return row.text

    def text_of(self, name: str, start: int, end: int) -> str:
        """A text window, served straight from the database."""
        doc_id, _ = self._document_row(name)
        (fragment,) = self._conn.execute(
            "SELECT substr(text, ?, ?) FROM documents WHERE doc_id = ?",
            (start + 1, end - start, doc_id),
        ).fetchone()
        return fragment

    # -- persisted indexes (see repro.index) ---------------------------------------------
    #
    # The index tables mirror the IndexManager payload: label-path
    # partition rows with packed spans, term posting rows, and one
    # overlap row per solid element.  Queries below answer from these
    # tables alone — no document reconstruction.

    def save_index(self, name: str, payload: dict, stamp: str = "") -> None:
        """Persist an ``IndexManager.payload()`` for a stored document."""
        doc_id, _ = self._document_row(name)

        def transaction() -> None:
            with self._conn:
                self._delete_index_rows(doc_id)
                self._insert_index_rows(doc_id, payload, stamp)

        self._write_retry(transaction, f"save_index {name!r}")

    def begin_stream_ingest(self, name: str, root_tag: str,
                            root_attributes: str, *,
                            overwrite: bool = False) -> "StreamIngestSession":
        """Open a chunked streaming write of one document + its index.

        Reclaims any staging rows a crashed ingest left behind, then
        inserts a placeholder document row under a reserved staging
        name (see :data:`STAGING_PREFIX`).  The returned session
        accepts element rows, text chunks and index postings in chunks;
        nothing is visible under ``name`` until its ``finalize``
        renames the staging row in the same transaction that writes
        ``index_meta``.  ``root_attributes`` is the JSON encoding the
        schema layer uses (``json.dumps(attrs, sort_keys=True)``).
        """
        if self.has(name) and not overwrite:
            raise StorageError(f"document {name!r} already stored")
        stale = [
            stale_name for (stale_name,) in self._conn.execute(
                "SELECT name FROM documents WHERE name GLOB ?",
                (STAGING_PREFIX + "*",),
            )
        ]
        for stale_name in stale:
            self.delete(stale_name)
            metrics.incr("storage.stream_staging_reclaimed")
        staging = STAGING_PREFIX + uuid4().hex

        def transaction() -> int:
            with self._conn:
                cursor = self._conn.execute(
                    "INSERT INTO documents"
                    " (name, root_tag, text, root_attributes)"
                    " VALUES (?, ?, '', ?)",
                    (staging, root_tag, root_attributes),
                )
                return cursor.lastrowid

        doc_id = self._write_retry(transaction, f"stream_ingest {name!r}")
        metrics.incr("storage.stream_ingests")
        return StreamIngestSession(self, doc_id, staging, name, overwrite)

    # -- lazy row-level access (see repro.streaming.lazy) -----------------------------

    def document_meta(self, name: str) -> tuple[int, str, str, int]:
        """``(doc_id, root_tag, root_attributes_json, text_length)``
        without pulling the document text — the lazy view's handle."""
        row = self._conn.execute(
            "SELECT doc_id, root_tag, root_attributes, length(text)"
            " FROM documents WHERE name = ?", (name,),
        ).fetchone()
        if row is None:
            raise StorageError(f"no stored document {name!r}")
        return row

    def hierarchy_names_of(self, name: str) -> list[str]:
        """Hierarchy names in rank (declaration) order."""
        doc_id, *_ = self.document_meta(name)
        return [
            hname for (hname,) in self._conn.execute(
                "SELECT name FROM hierarchies WHERE doc_id = ?"
                " ORDER BY rank", (doc_id,),
            )
        ]

    _ELEMENT_ROW_COLS = ("elem_id, hierarchy, tag, start, end,"
                         " parent_id, child_rank, attributes")

    def element_row_full(self, name: str, elem_id: int) -> ElementRow | None:
        """The full schema row for one element — one keyed probe of the
        ``(doc_id, elem_id)`` primary key — or ``None``."""
        doc_id, _ = self._document_row(name)
        row = self._conn.execute(
            f"SELECT {self._ELEMENT_ROW_COLS} FROM elements"
            " WHERE doc_id = ? AND elem_id = ?", (doc_id, elem_id),
        ).fetchone()
        return ElementRow(*row) if row is not None else None

    def element_rows_in_span(
        self, name: str, hierarchy: str, start: int, end: int
    ) -> list[ElementRow]:
        """All rows of ``hierarchy`` whose span fits inside
        ``[start, end]`` (zero-width rows at either boundary included),
        by the ``(doc_id, start, end)`` index, ordered by ``elem_id``.

        A candidate superset for subtree hydration: the caller still
        filters by parent-chain reachability, since an overlapping
        hierarchy sibling can share the interval.
        """
        doc_id, _ = self._document_row(name)
        return [
            ElementRow(*row) for row in self._conn.execute(
                f"SELECT {self._ELEMENT_ROW_COLS} FROM elements"
                " WHERE doc_id = ? AND start >= ? AND end <= ?"
                " AND hierarchy = ? ORDER BY elem_id",
                (doc_id, start, end, hierarchy),
            )
        ]

    def element_rows_by_tag(
        self, name: str, tag: str, hierarchy: str | None = None,
        attr: str | None = None, value: str | None = None,
    ) -> list[ElementRow]:
        """Full rows with ``tag``, by the ``(doc_id, tag)`` index,
        ordered by ``elem_id``.

        With ``attr``/``value``, rows are prefiltered in SQL by the
        :func:`_json_token_prefix` ``instr`` needle — the caller must
        still confirm the match on the decoded attribute dict (the
        needle never false-negatives, but may false-positive).
        """
        doc_id, _ = self._document_row(name)
        query = (f"SELECT {self._ELEMENT_ROW_COLS} FROM elements"
                 " WHERE doc_id = ? AND tag = ?")
        params: list = [doc_id, tag]
        if hierarchy is not None:
            query += " AND hierarchy = ?"
            params.append(hierarchy)
        if attr is not None and value is not None:
            query += " AND instr(attributes, ?) > 0 AND instr(attributes, ?) > 0"
            params.extend((_json_token_prefix(attr),
                           _json_token_prefix(value)))
        query += " ORDER BY elem_id"
        return [
            ElementRow(*row)
            for row in self._conn.execute(query, tuple(params))
        ]

    def _insert_index_rows(self, doc_id: int, payload: dict,
                           stamp: str = "") -> None:
        """Insert the full index payload rows (caller owns the
        transaction; index rows for ``doc_id`` must be gone already).
        ``stamp`` is the session generation mark an editing-session
        writer leaves so it can later recognize its own artifact."""
        self._conn.execute(
            "INSERT INTO index_meta VALUES (?, ?, ?, ?)",
            (doc_id, payload.get("format", 1),
             payload.get("doc_length", 0), stamp),
        )
        self._conn.executemany(
            "INSERT INTO index_paths VALUES (?, ?, ?, ?, ?, ?)",
            [
                (doc_id, hierarchy, path, tag, count,
                 pack_u32([v for span in spans for v in span]))
                for hierarchy, path, tag, count, spans
                in payload.get("paths", [])
            ],
        )
        self._conn.executemany(
            "INSERT INTO index_terms VALUES (?, ?, ?)",
            [
                (doc_id, term, pack_u32(starts))
                for term, starts in payload.get("terms", {}).items()
            ],
        )
        self._conn.executemany(
            "INSERT INTO index_attrs VALUES (?, ?, ?, ?, ?)",
            [
                (doc_id, name, value, count,
                 pack_u32([v for span in spans for v in span]))
                for name, value, count, spans in payload.get("attrs", [])
            ],
        )
        self._conn.executemany(
            "INSERT INTO index_overlap VALUES (?, ?, ?, ?, ?)",
            [
                (doc_id, hierarchy, tag, start, end)
                for hierarchy, entry in payload.get("overlap", {}).items()
                for start, end, tag in zip(
                    entry["starts"], entry["ends"], entry["tags"]
                )
            ],
        )
        self._conn.executemany(
            "INSERT INTO collection_summary VALUES (?, ?, ?, ?)",
            [(doc_id, kind, key, n)
             for kind, key, n in collection_summary_rows(payload)],
        )

    def _patch_collection_rows(self, doc_id: int, kind: int, key: str,
                               count_sql: str, params: tuple) -> None:
        """Bring one ``collection_summary`` row in step with the index
        tables just patched (statements only — the caller owns the
        transaction).  ``count_sql`` recomputes the population from the
        per-document index rows; zero deletes the summary row, so the
        routing table never holds a key the document can no longer
        match."""
        (n,) = self._conn.execute(count_sql, params).fetchone()
        if n:
            self._conn.execute(
                "INSERT OR REPLACE INTO collection_summary"
                " VALUES (?, ?, ?, ?)",
                (doc_id, kind, key, n),
            )
        else:
            self._conn.execute(
                "DELETE FROM collection_summary"
                " WHERE doc_id = ? AND kind = ? AND key = ?",
                (doc_id, kind, key),
            )

    def _apply_index_delta_rows(self, doc_id: int, deltas,
                                partition_spans, attr_spans) -> None:
        """Row-level index maintenance from a
        :class:`~repro.index.manager.PersistDeltas` (statements only —
        :meth:`resave_with_index` owns the transaction).

        Inserts/deletes the individual ``index_overlap`` rows the edits
        touched, upserts exactly the dirty ``index_paths`` partition
        rows (``partition_spans(hierarchy, path)`` supplies the current
        ``(start, end)`` members; an empty answer deletes the row), and
        likewise upserts the dirty ``index_attrs`` posting rows from
        ``attr_spans(name, value)``.  Term rows never change — the text
        is immutable.
        """
        if deltas.overlap_add:
            self._conn.executemany(
                "INSERT INTO index_overlap VALUES (?, ?, ?, ?, ?)",
                [(doc_id, hierarchy, tag, start, end)
                 for hierarchy, tag, start, end in deltas.overlap_add],
            )
        for hierarchy, tag, start, end in deltas.overlap_remove:
            self._conn.execute(
                "DELETE FROM index_overlap WHERE rowid IN ("
                " SELECT rowid FROM index_overlap"
                " WHERE doc_id = ? AND hierarchy = ? AND tag = ?"
                " AND start = ? AND end = ? LIMIT 1)",
                (doc_id, hierarchy, tag, start, end),
            )
        for hierarchy, path in deltas.paths:
            spans = partition_spans(hierarchy, path)
            encoded = encode_path(path)
            if spans:
                self._conn.execute(
                    "INSERT OR REPLACE INTO index_paths"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    (doc_id, hierarchy, encoded, path[-1], len(spans),
                     pack_u32([v for span in spans for v in span])),
                )
            else:
                self._conn.execute(
                    "DELETE FROM index_paths WHERE doc_id = ?"
                    " AND hierarchy = ? AND path = ?",
                    (doc_id, hierarchy, encoded),
                )
        for attr_name, value in deltas.attrs:
            spans = attr_spans(attr_name, value)
            if spans:
                self._conn.execute(
                    "INSERT OR REPLACE INTO index_attrs"
                    " VALUES (?, ?, ?, ?, ?)",
                    (doc_id, attr_name, value, len(spans),
                     pack_u32([v for span in spans for v in span])),
                )
            else:
                self._conn.execute(
                    "DELETE FROM index_attrs WHERE doc_id = ?"
                    " AND name = ? AND value = ?",
                    (doc_id, attr_name, value),
                )
        # Collection-summary maintenance: recompute exactly the touched
        # routing keys from the index rows patched above (same
        # transaction, so the SELECTs see the new state).  Aggregating
        # in SQL keeps the result byte-identical to the full-payload
        # derivation of :func:`collection_summary_rows`.  Term rows
        # never change — the text is immutable within a session.
        for tag in {path[-1] for _hierarchy, path in deltas.paths}:
            self._patch_collection_rows(
                doc_id, KIND_TAG, tag,
                "SELECT COALESCE(SUM(n), 0) FROM index_paths"
                " WHERE doc_id = ? AND tag = ?",
                (doc_id, tag),
            )
        for encoded in {encode_path(path)
                        for _hierarchy, path in deltas.paths}:
            self._patch_collection_rows(
                doc_id, KIND_PATH, encoded,
                "SELECT COALESCE(SUM(n), 0) FROM index_paths"
                " WHERE doc_id = ? AND path = ?",
                (doc_id, encoded),
            )
        for attr_name, value in deltas.attrs:
            self._patch_collection_rows(
                doc_id, KIND_ATTR, encode_path((attr_name, value)),
                "SELECT COALESCE(SUM(n), 0) FROM index_attrs"
                " WHERE doc_id = ? AND name = ? AND value = ?",
                (doc_id, attr_name, value),
            )

    def index_stamp(self, name: str) -> str | None:
        """The generation stamp of the persisted index (empty for one
        written outside an editing session), or ``None`` when no index
        is stored."""
        doc_id, _ = self._document_row(name)
        row = self._conn.execute(
            "SELECT stamp FROM index_meta WHERE doc_id = ?", (doc_id,)
        ).fetchone()
        return row[0] if row else None

    def route_documents(self, features) -> list[str]:
        """The names of every document that *can* match a query with
        the given necessary ``features``, in sorted order.

        ``features`` are the router's conservative necessary conditions
        (:func:`repro.collection.router.routing_features`): tuples of
        ``("root", tag)``, ``("tag", tag)``, ``("term", needle)``,
        ``("attr", name, value)`` or ``("path", encoded)``.  A document
        survives only if *every* feature holds — but the test errs
        strictly on the side of keeping documents: unindexed documents
        always route (they have no summary rows to consult), a tag
        feature also accepts a matching root tag (the shared GODDAG
        root is reachable by ``//x`` yet is not an element row), and an
        attribute feature falls back to an ``instr`` prefilter over the
        stored root-attribute JSON (root attributes are not in the
        posting index).  False positives cost a wasted per-document
        evaluation; a false negative would change answers — so there
        are none by construction.
        """
        where = ["m.doc_id IS NULL"]
        conj: list[str] = []
        params: list = []
        for feature in features:
            kind, key = feature[0], feature[1]
            if kind == "root":
                conj.append("d.root_tag = ?")
                params.append(key)
            elif kind == "tag":
                conj.append(
                    "(EXISTS(SELECT 1 FROM collection_summary s"
                    " WHERE s.doc_id = d.doc_id AND s.kind = ?"
                    " AND s.key = ?) OR d.root_tag = ?)"
                )
                params.extend((KIND_TAG, key, key))
            elif kind == "term":
                conj.append(
                    "EXISTS(SELECT 1 FROM collection_summary s"
                    " WHERE s.doc_id = d.doc_id AND s.kind = ?"
                    " AND instr(s.key, ?) > 0)"
                )
                params.extend((KIND_TERM, key))
            elif kind == "attr":
                name, value = key, feature[2]
                conj.append(
                    "(EXISTS(SELECT 1 FROM collection_summary s"
                    " WHERE s.doc_id = d.doc_id AND s.kind = ?"
                    " AND s.key = ?) OR (instr(d.root_attributes, ?) > 0"
                    " AND instr(d.root_attributes, ?) > 0))"
                )
                params.extend((KIND_ATTR, encode_path((name, value)),
                               _json_token_prefix(name),
                               _json_token_prefix(value)))
            elif kind == "path":
                conj.append(
                    "EXISTS(SELECT 1 FROM collection_summary s"
                    " WHERE s.doc_id = d.doc_id AND s.kind = ?"
                    " AND s.key = ?)"
                )
                params.extend((KIND_PATH, key))
            else:
                raise StorageError(f"unknown routing feature kind {kind!r}")
        if not conj:
            # No necessary condition extracted — every document is a
            # candidate, indexed or not.
            return self.names()
        where.append("(" + " AND ".join(conj) + ")")
        return [
            name for (name,) in self._conn.execute(
                "SELECT d.name FROM documents d"
                " LEFT JOIN index_meta m USING (doc_id)"
                f" WHERE {' OR '.join(where)} ORDER BY d.name",
                params,
            )
        ]

    def corpus_counts(self) -> dict[str, int]:
        """Raw corpus-level counters for the ``repro-stats/1`` stats
        surfaces (:meth:`repro.storage.GoddagStore.stats` and
        :meth:`repro.collection.Corpus.stats`)."""
        counts = {
            "documents": 0, "indexed_documents": 0, "element_rows": 0,
            "summary_rows": 0, "tag_keys": 0, "term_keys": 0,
            "attr_keys": 0, "path_keys": 0,
        }
        (counts["documents"],) = self._conn.execute(
            "SELECT COUNT(*) FROM documents").fetchone()
        (counts["indexed_documents"],) = self._conn.execute(
            "SELECT COUNT(*) FROM index_meta").fetchone()
        (counts["element_rows"],) = self._conn.execute(
            "SELECT COUNT(*) FROM elements").fetchone()
        names = {KIND_TAG: "tag_keys", KIND_TERM: "term_keys",
                 KIND_ATTR: "attr_keys", KIND_PATH: "path_keys"}
        for kind, n in self._conn.execute(
            "SELECT kind, COUNT(*) FROM collection_summary GROUP BY kind"
        ):
            counts["summary_rows"] += n
            counts[names[kind]] = n
        return counts

    def resave_with_index(self, document: GoddagDocument, name: str,
                          deltas, partition_spans, payload_factory,
                          stamp: str = "",
                          expected_stamp: str | None = None,
                          attr_spans=None,
                          strict_stamp: bool = False) -> None:
        """Atomically bring a stored document's rows *and* its index in
        step, in one transaction — a crash can never pair a newer
        document with a stale index.  ``deltas`` (when applicable and an
        index is stored) patches row-level — element rows through the
        journal's :class:`~repro.core.changes.ElementRowCoalescer`
        (``deltas.rows``), index rows through
        :meth:`_apply_index_delta_rows` — so an attribute-only edit
        persists in O(1) element-row writes instead of an
        O(document) delete-and-reinsert.  Otherwise every row is
        rewritten from ``document`` and ``payload_factory()``.  Either
        way the index generation mark becomes ``stamp``.

        The delta path re-verifies ``expected_stamp`` *inside* the
        transaction (a conditional stamp update): if another writer
        replaced the artifact after the caller's own-artifact check, the
        deltas no longer describe what is stored, and the method falls
        back to the full rewrite — never a row-patch of a stranger's
        artifact.  The same fallback covers journal overflow, untracked
        mutations, and a broken row coalescer (the caller passes
        ``deltas=None`` for the first two — mirroring
        :class:`~repro.index.manager.IndexManager`'s own rebuild rules —
        and ``deltas.rows.broken`` guards the third).  Dirty attribute
        postings likewise need the ``attr_spans(name, value)`` supplier;
        deltas that touched attributes without one take the full-write
        path rather than guessing (a wrong guess would silently delete
        posting rows).

        Every full-rewrite fallback is reason-coded into the
        ``storage.full_rewrites.*`` metrics ('stale-deltas',
        'broken-coalescer', 'missing-attr-spans', 'no-stored-index',
        'stamp-mismatch') and warns under ``REPRO_OBS_STRICT=1``.

        ``strict_stamp=True`` turns the stamp-mismatch fallback into a
        typed :class:`~repro.errors.WriteConflictError` instead: the
        transaction rolls back untouched rather than rewriting a
        concurrent writer's rows wholesale.  This is the write-session
        publish contract of :mod:`repro.service` — a second writer
        racing the publish surfaces as a conflict, never as silent
        last-writer-wins corruption of the other session's artifact.

        The whole transaction sits behind the bounded SQLITE_BUSY retry
        (:meth:`_write_retry`); a retried attempt re-runs the
        in-transaction stamp verification from scratch, so a writer that
        published during the backoff is still detected.
        """
        self._write_retry(
            lambda: self._resave_transaction(
                document, name, deltas, partition_spans, payload_factory,
                stamp, expected_stamp, attr_spans, strict_stamp,
            ),
            f"resave_with_index {name!r}",
        )

    def _resave_transaction(self, document: GoddagDocument, name: str,
                            deltas, partition_spans, payload_factory,
                            stamp: str, expected_stamp: str | None,
                            attr_spans, strict_stamp: bool) -> None:
        doc_id, indexed = self._doc_index_row(name)
        tracer = current_tracer()
        span_cm = (
            tracer.span("transaction", document=name)
            if tracer is not None else nullcontext(None)
        )
        with span_cm as txn_span, self._conn:
            # The document row always rewrites: root attributes may have
            # changed, and it is one row either way.  (The text and the
            # hierarchy set are immutable within a tracked session — a
            # hierarchy addition is an untracked touch, which voids the
            # deltas and lands in the full-rewrite branch below.)
            doc_row = DocumentRow(
                name=name,
                root_tag=document.root.tag,
                text=document.text,
                root_attributes=json.dumps(document.root.attributes,
                                           sort_keys=True),
            )
            self._conn.execute(
                "UPDATE documents SET root_tag = ?, text = ?,"
                " root_attributes = ? WHERE doc_id = ?",
                (doc_row.root_tag, doc_row.text, doc_row.root_attributes,
                 doc_id),
            )
            row_level = False
            reason = None
            if deltas is None:
                reason = "stale-deltas"
            elif deltas.rows.broken:
                reason = "broken-coalescer"
            elif deltas.attrs and attr_spans is None:
                reason = "missing-attr-spans"
            elif not indexed:
                reason = "no-stored-index"
            else:
                # Stamp re-verification, inside the transaction: the
                # conditional UPDATE succeeds only against the exact
                # artifact generation the deltas describe.
                metrics.incr("storage.stamp_checks")
                cursor = self._conn.execute(
                    "UPDATE index_meta SET stamp = ?"
                    " WHERE doc_id = ? AND stamp = ?",
                    (stamp, doc_id, expected_stamp or ""),
                )
                row_level = cursor.rowcount == 1
                if not row_level:
                    reason = "stamp-mismatch"
            if reason == "stamp-mismatch" and strict_stamp:
                # Raising inside the transaction rolls everything back
                # (including the document-row update above): the racing
                # writer's artifact stays exactly as it published it.
                metrics.incr("service.conflicts")
                raise WriteConflictError(
                    f"document {name!r} was published by another writer "
                    "during this session; nothing was written",
                    name=name, expected=expected_stamp or "",
                )
            if row_level:
                if tracer is not None:
                    with tracer.span("coalesce") as coalesce_span:
                        updates = deltas.rows.updates(document)
                    coalesce_span.set(
                        records=deltas.rows.records_seen,
                        row_writes=len(updates),
                    )
                else:
                    updates = deltas.rows.updates(document)
                deleted = sum(1 for op in updates if op.is_delete)
                metrics.incr("storage.row_level_saves")
                metrics.incr("storage.rows_deleted", deleted)
                metrics.incr("storage.rows_upserted", len(updates) - deleted)
                self._apply_element_row_deltas(doc_id, updates)
                self._apply_index_delta_rows(
                    doc_id, deltas, partition_spans,
                    attr_spans or (lambda name, value: []),
                )
            else:
                _obs_fallback(
                    "storage.full_rewrites", reason, f"document {name!r}"
                )
                self._rewrite_rows(doc_id, document, name)
                self._delete_index_rows(doc_id)
                self._insert_index_rows(doc_id, payload_factory(), stamp)
            if txn_span is not None:
                txn_span.set(row_level=row_level, reason=reason)

    def _rewrite_rows(
        self, doc_id: int, document: GoddagDocument, name: str
    ) -> None:
        """Full rewrite of the hierarchy and element rows (statements
        only — the caller owns the transaction and the document row)."""
        _, hierarchy_rows, element_rows = encode_document(document, name)
        metrics.incr("storage.rows_rewritten", len(element_rows))
        self._conn.execute(
            "DELETE FROM hierarchies WHERE doc_id = ?", (doc_id,)
        )
        self._conn.execute(
            "DELETE FROM elements WHERE doc_id = ?", (doc_id,)
        )
        self._conn.executemany(
            "INSERT INTO hierarchies VALUES (?, ?, ?, ?)",
            [(doc_id, row.rank, row.name, row.dtd_source)
             for row in hierarchy_rows],
        )
        self._conn.executemany(
            "INSERT INTO elements VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [(doc_id, row.elem_id, row.hierarchy, row.tag, row.start,
              row.end, row.parent_id, row.child_rank, row.attributes)
             for row in element_rows],
        )

    def _apply_element_row_deltas(self, doc_id: int, updates) -> None:
        """Journal-driven element-row maintenance (statements only — the
        caller owns the transaction).

        ``updates`` is the coalesced write set of
        :meth:`~repro.core.changes.ElementRowCoalescer.updates`: one
        ``DELETE`` per removed element, one keyed upsert per element
        whose row content, parent, or sibling rank changed.  Rows are
        keyed by ``(doc_id, elem_id)`` — the persistent birth ordinal —
        so the result is byte-identical to a full rewrite.
        """
        self._conn.executemany(
            "DELETE FROM elements WHERE doc_id = ? AND elem_id = ?",
            [(doc_id, op.ordinal) for op in updates if op.is_delete],
        )
        self._conn.executemany(
            "INSERT OR REPLACE INTO elements VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (doc_id, row.elem_id, row.hierarchy, row.tag, row.start,
                 row.end, row.parent_id, row.child_rank, row.attributes)
                for row in (
                    element_row(op.element, op.parent_id, op.child_rank)
                    for op in updates
                    if not op.is_delete
                )
            ],
        )

    def _delete_index_rows(self, doc_id: int) -> None:
        for table in ("index_meta", "index_paths", "index_terms",
                      "index_overlap", "index_attrs",
                      "collection_summary"):
            self._conn.execute(
                f"DELETE FROM {table} WHERE doc_id = ?", (doc_id,)
            )

    def _doc_index_row(self, name: str) -> tuple[int, bool]:
        """``(doc_id, has_index)`` in one statement — the gate every
        index-aware query pays exactly once."""
        row = self._conn.execute(
            "SELECT d.doc_id, m.doc_id IS NOT NULL"
            " FROM documents d LEFT JOIN index_meta m USING (doc_id)"
            " WHERE d.name = ?", (name,),
        ).fetchone()
        if row is None:
            raise StorageError(f"no stored document {name!r}")
        return row[0], bool(row[1])

    def has_index(self, name: str) -> bool:
        return self._doc_index_row(name)[1]

    def drop_index(self, name: str) -> None:
        doc_id, _ = self._document_row(name)

        def transaction() -> None:
            with self._conn:
                self._delete_index_rows(doc_id)

        self._write_retry(transaction, f"drop_index {name!r}")

    def _corrupt(self, name: str, exc: Exception) -> StorageError:
        """Wrap a blob-decoding failure in the module's error contract."""
        return StorageError(
            f"corrupt persisted index for {name!r}: {exc} — "
            f"drop_index({name!r}) removes it and restores unindexed queries"
        )

    def load_index(self, name: str) -> dict | None:
        """The full persisted payload, or None when no index is stored."""
        doc_id, _ = self._document_row(name)
        meta = self._conn.execute(
            "SELECT format, doc_length FROM index_meta WHERE doc_id = ?",
            (doc_id,),
        ).fetchone()
        if meta is None:
            return None
        overlap: dict[str, dict[str, list]] = {}
        for hierarchy, tag, start, end in self._conn.execute(
            "SELECT hierarchy, tag, start, end FROM index_overlap"
            " WHERE doc_id = ? ORDER BY hierarchy, start, end DESC", (doc_id,),
        ):
            entry = overlap.setdefault(
                hierarchy, {"starts": [], "ends": [], "tags": []}
            )
            entry["starts"].append(start)
            entry["ends"].append(end)
            entry["tags"].append(tag)
        try:
            terms = {
                term: unpack_u32(starts)
                for term, starts in self._conn.execute(
                    "SELECT term, starts FROM index_terms WHERE doc_id = ?",
                    (doc_id,),
                )
            }
            paths = []
            for hierarchy, path, tag, count, spans in self._conn.execute(
                "SELECT hierarchy, path, tag, n, spans FROM index_paths"
                " WHERE doc_id = ? ORDER BY hierarchy, path", (doc_id,),
            ):
                flat = unpack_u32(spans)
                paths.append(
                    (hierarchy, path, tag, count,
                     [(flat[2 * i], flat[2 * i + 1]) for i in range(count)])
                )
            attrs = []
            for attr_name, value, count, spans in self._conn.execute(
                "SELECT name, value, n, spans FROM index_attrs"
                " WHERE doc_id = ? ORDER BY name, value", (doc_id,),
            ):
                flat = unpack_u32(spans)
                attrs.append(
                    (attr_name, value, count,
                     [(flat[2 * i], flat[2 * i + 1]) for i in range(count)])
                )
        except (ValueError, IndexError) as exc:
            raise self._corrupt(name, exc) from exc
        return {
            "format": meta[0],
            "name": name,
            "doc_length": meta[1],
            "overlap": overlap,
            "terms": terms,
            "paths": paths,
            "attrs": attrs,
        }

    def index_overlap_query(
        self, name: str, start: int, end: int
    ) -> list[tuple[str, str, int, int]] | None:
        """Solid elements intersecting [start, end) from the overlap
        index, or ``None`` when no index is stored (caller falls back)."""
        doc_id, indexed = self._doc_index_row(name)
        if not indexed:
            return None
        return list(
            self._conn.execute(
                "SELECT hierarchy, tag, start, end FROM index_overlap"
                " WHERE doc_id = ? AND start < ? AND end > ?"
                " ORDER BY start, end DESC, hierarchy, tag",
                (doc_id, end, start),
            )
        )

    def index_term_occurrences(self, name: str, needle: str) -> list[int] | None:
        """Occurrence offsets of an alphanumeric needle from the term
        rows, or ``None`` when no index is stored (caller falls back)."""
        doc_id, indexed = self._doc_index_row(name)
        if not indexed:
            return None
        rows = (
            (term, unpack_u32(starts))
            for term, starts in self._conn.execute(
                "SELECT term, starts FROM index_terms"
                " WHERE doc_id = ? AND instr(term, ?) > 0",
                (doc_id, needle),
            )
        )
        try:
            return occurrences_from_terms(rows, needle)
        except ValueError as exc:
            raise self._corrupt(name, exc) from exc

    def index_attr_count(self, name: str, attr: str, value: str) -> int | None:
        """Elements with attribute ``attr`` = ``value`` per the persisted
        attribute postings, or ``None`` when no index is stored or the
        index predates the attribute table (format < 2) — the caller
        falls back to a storage scan either way."""
        doc_id, indexed = self._doc_index_row(name)
        if not indexed:
            return None
        (fmt,) = self._conn.execute(
            "SELECT format FROM index_meta WHERE doc_id = ?", (doc_id,)
        ).fetchone()
        if fmt < 2:
            return None
        (count,) = self._conn.execute(
            "SELECT COALESCE(SUM(n), 0) FROM index_attrs"
            " WHERE doc_id = ? AND name = ? AND value = ?",
            (doc_id, attr, value),
        ).fetchone()
        return count

    def index_tag_count(self, name: str, tag: str) -> int | None:
        """Elements with ``tag`` per the structural summary, or ``None``
        when no index is stored (zero rows and zero elements would be
        indistinguishable; the caller falls back to a table count)."""
        doc_id, indexed = self._doc_index_row(name)
        if not indexed:
            return None
        (count,) = self._conn.execute(
            "SELECT COALESCE(SUM(n), 0) FROM index_paths"
            " WHERE doc_id = ? AND tag = ?", (doc_id, tag),
        ).fetchone()
        return count


class SqliteConnectionPool:
    """A bounded pool of :class:`SqliteStore` connections over one file.

    The concurrency substrate of the document service: every session
    borrows a connection for exactly as long as it touches the database
    (a snapshot load, a stamp probe, a publish transaction) and returns
    it immediately, so ``size`` bounds the *simultaneous* database
    work, not the number of sessions.  All connections share one
    WAL-mode database file — readers on other connections proceed while
    a writer commits — and each carries the per-connection pragmas of
    :class:`SqliteStore` (``busy_timeout``, ``foreign_keys``,
    ``synchronous=NORMAL``).

    Connections are created lazily up to ``size`` and reused
    indefinitely.  :meth:`acquire` past capacity blocks up to
    ``acquire_timeout_s`` and then raises the typed
    :class:`~repro.errors.PoolExhaustedError` — never a silent
    deadlock.  Occupancy lands on the ``storage.pool.in_use`` gauge
    (observed at every acquire), waits on the ``storage.pool.wait``
    timer, and each acquisition on the ``storage.pool.acquires``
    counter.

    An in-memory path is rejected: every ``:memory:`` connection is a
    *different* database, so a pool over one is incoherent by
    construction.
    """

    def __init__(self, path: str, size: int = 8, *, wal: bool = True,
                 busy_timeout_ms: int = 5000,
                 acquire_timeout_s: float = 30.0) -> None:
        if str(path) == ":memory:":
            raise StorageError(
                "a connection pool needs a file-backed database: every "
                "':memory:' connection is a distinct database"
            )
        if size < 1:
            raise StorageError(f"pool size must be >= 1, got {size}")
        self.path = str(path)
        self.size = size
        self.acquire_timeout_s = acquire_timeout_s
        self._wal = wal
        self._busy_timeout_ms = busy_timeout_ms
        self._idle: list[SqliteStore] = []
        self._created = 0
        self._closed = False
        self._available = threading.Condition(threading.Lock())

    @property
    def in_use(self) -> int:
        """Connections currently out on loan."""
        with self._available:
            return self._created - len(self._idle)

    def acquire(self, timeout: float | None = None) -> SqliteStore:
        """Borrow a connection (create one lazily under the bound).

        Blocks up to ``timeout`` (default: the pool's
        ``acquire_timeout_s``) when all ``size`` connections are out,
        then raises :class:`~repro.errors.PoolExhaustedError`.
        """
        if timeout is None:
            timeout = self.acquire_timeout_s
        deadline = time.monotonic() + timeout
        with metrics.time("storage.pool.wait"):
            with self._available:
                while True:
                    if self._closed:
                        raise StorageError(
                            f"connection pool over {self.path!r} is closed"
                        )
                    if self._idle:
                        store = self._idle.pop()
                        break
                    if self._created < self.size:
                        # Count the slot before connecting so a slow
                        # connect cannot over-allocate past the bound.
                        self._created += 1
                        store = None
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._available.wait(remaining):
                        raise PoolExhaustedError(
                            f"all {self.size} pooled connections over "
                            f"{self.path!r} stayed busy for {timeout:.1f}s"
                        )
                metrics.incr("storage.pool.acquires")
                metrics.observe(
                    "storage.pool.in_use", self._created - len(self._idle)
                )
        if store is None:
            try:
                store = SqliteStore(
                    self.path, wal=self._wal,
                    busy_timeout_ms=self._busy_timeout_ms,
                )
            except BaseException:
                with self._available:
                    self._created -= 1
                    self._available.notify()
                raise
        return store

    def release(self, store: SqliteStore) -> None:
        """Return a borrowed connection to the idle set."""
        with self._available:
            if self._closed:
                self._created -= 1
                store.close()
            else:
                self._idle.append(store)
            self._available.notify()

    @contextmanager
    def connection(self, timeout: float | None = None):
        """``with pool.connection() as store:`` — borrow for the block."""
        store = self.acquire(timeout)
        try:
            yield store
        finally:
            self.release(store)

    def close(self) -> None:
        """Close every idle connection and refuse further acquires.
        Connections currently on loan close when released."""
        with self._available:
            self._closed = True
            while self._idle:
                self._created -= 1
                self._idle.pop().close()
            self._available.notify_all()

    def __enter__(self) -> "SqliteConnectionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class StreamIngestSession:
    """A chunked streaming write of one document and its index.

    Created by :meth:`SqliteStore.begin_stream_ingest`.  Element rows,
    text and posting appends each commit in their own bounded
    transaction against the staging document row, so peak memory is the
    caller's chunk size, not the document.  Append order is the
    caller's proof obligation: path-partition spans and term posting
    starts are concatenated blob-wise, so they must arrive in the same
    order a materialized ``IndexManager.payload()`` would emit them
    (document order — which streaming close order provides, see
    :mod:`repro.streaming.ingest`).  ``finalize`` writes everything
    order-sensitive-at-once (hierarchies, sorted attribute and overlap
    rows, ``index_meta``, SQL-derived ``collection_summary`` rows) and
    renames the staging row to the real name in one transaction;
    ``abort`` deletes the staging rows.
    """

    def __init__(self, store: SqliteStore, doc_id: int, staging: str,
                 name: str, overwrite: bool) -> None:
        self._store = store
        self._doc_id = doc_id
        self._staging = staging
        self.name = name
        self._overwrite = overwrite
        self._done = False

    # -- chunk appends (one bounded transaction each) ----------------------------

    def add_elements(self, rows) -> None:
        """Insert element rows ``(elem_id, hierarchy, tag, start, end,
        parent_id, child_rank, attributes_json)`` — any order."""
        conn = self._store._conn
        doc_id = self._doc_id

        def transaction() -> None:
            with conn:
                conn.executemany(
                    "INSERT INTO elements VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    [(doc_id, *row) for row in rows],
                )

        self._store._write_retry(transaction, "stream elements")
        metrics.incr("storage.stream_chunks")

    def append_text(self, chunk: str) -> None:
        """Append a confirmed text chunk to the document row."""
        if not chunk:
            return
        conn = self._store._conn

        def transaction() -> None:
            with conn:
                conn.execute(
                    "UPDATE documents SET text = text || ?"
                    " WHERE doc_id = ?", (chunk, self._doc_id),
                )

        self._store._write_retry(transaction, "stream text")

    def append_paths(self, rows) -> None:
        """Upsert-append label-path partition postings: rows of
        ``(hierarchy, encoded_path, tag, n, spans_blob)`` whose spans
        concatenate onto any prior append for the same partition.

        The blob append happens in Python (read, concat, update) — SQL
        ``||`` converts BLOB operands to TEXT, which would corrupt the
        packed u32 spans as soon as they stop being valid UTF-8.
        """
        conn = self._store._conn
        doc_id = self._doc_id

        def transaction() -> None:
            with conn:
                for hierarchy, path, tag, n, spans in rows:
                    prior = conn.execute(
                        "SELECT n, spans FROM index_paths WHERE doc_id = ?"
                        " AND hierarchy = ? AND path = ?",
                        (doc_id, hierarchy, path),
                    ).fetchone()
                    if prior is None:
                        conn.execute(
                            "INSERT INTO index_paths VALUES"
                            " (?, ?, ?, ?, ?, ?)",
                            (doc_id, hierarchy, path, tag, n, spans),
                        )
                    else:
                        conn.execute(
                            "UPDATE index_paths SET n = ?, spans = ?"
                            " WHERE doc_id = ? AND hierarchy = ?"
                            " AND path = ?",
                            (prior[0] + n, prior[1] + spans,
                             doc_id, hierarchy, path),
                        )

        self._store._write_retry(transaction, "stream paths")

    def append_terms(self, rows) -> None:
        """Upsert-append term postings: rows of ``(term, starts_blob)``
        (Python-side blob concat — see :meth:`append_paths`)."""
        conn = self._store._conn
        doc_id = self._doc_id

        def transaction() -> None:
            with conn:
                for term, starts in rows:
                    prior = conn.execute(
                        "SELECT starts FROM index_terms WHERE doc_id = ?"
                        " AND term = ?", (doc_id, term),
                    ).fetchone()
                    if prior is None:
                        conn.execute(
                            "INSERT INTO index_terms VALUES (?, ?, ?)",
                            (doc_id, term, starts),
                        )
                    else:
                        conn.execute(
                            "UPDATE index_terms SET starts = ?"
                            " WHERE doc_id = ? AND term = ?",
                            (prior[0] + starts, doc_id, term),
                        )

        self._store._write_retry(transaction, "stream terms")

    # -- closing -----------------------------------------------------------------

    def finalize(self, *, hierarchy_rows, doc_length: int, attr_rows,
                 overlap_rows, stamp: str) -> str:
        """Publish the document: everything order-sensitive, the
        ``index_meta`` visibility gate, the SQL-derived collection
        summary, and the staging→real rename — one transaction.

        ``attr_rows`` are ``(name, value, n, spans_blob)`` sorted by
        key with members in document order; ``overlap_rows`` are
        ``(hierarchy, tag, start, end)`` in the payload's order
        (hierarchy rank, then ``(start, -end, tag, ordinal)``), which
        keeps ``load_index`` tie-breaks byte-identical to a
        materialized save.
        """
        conn = self._store._conn
        doc_id = self._doc_id

        def transaction() -> str:
            with conn:
                conn.executemany(
                    "INSERT INTO hierarchies VALUES (?, ?, ?, ?)",
                    [(doc_id, rank, hname, dtd)
                     for rank, hname, dtd in hierarchy_rows],
                )
                conn.executemany(
                    "INSERT INTO index_attrs VALUES (?, ?, ?, ?, ?)",
                    [(doc_id, *row) for row in attr_rows],
                )
                conn.executemany(
                    "INSERT INTO index_overlap VALUES (?, ?, ?, ?, ?)",
                    [(doc_id, *row) for row in overlap_rows],
                )
                conn.execute(
                    "INSERT INTO index_meta VALUES (?, ?, ?, ?)",
                    (doc_id, STREAM_PAYLOAD_FORMAT, doc_length, stamp),
                )
                conn.execute(
                    "INSERT INTO collection_summary"
                    " SELECT doc_id, ?, tag, SUM(n) FROM index_paths"
                    " WHERE doc_id = ? GROUP BY tag", (KIND_TAG, doc_id),
                )
                conn.execute(
                    "INSERT INTO collection_summary"
                    " SELECT doc_id, ?, path, SUM(n) FROM index_paths"
                    " WHERE doc_id = ? GROUP BY path", (KIND_PATH, doc_id),
                )
                conn.execute(
                    "INSERT INTO collection_summary"
                    " SELECT doc_id, ?, term, length(starts) / 4"
                    " FROM index_terms WHERE doc_id = ?",
                    (KIND_TERM, doc_id),
                )
                conn.executemany(
                    "INSERT INTO collection_summary VALUES (?, ?, ?, ?)",
                    [(doc_id, KIND_ATTR, encode_path((aname, avalue)), n)
                     for aname, avalue, n, _spans in attr_rows],
                )
                existing = conn.execute(
                    "SELECT doc_id FROM documents WHERE name = ?",
                    (self.name,),
                ).fetchone()
                if existing is not None:
                    if not self._overwrite:
                        raise StorageError(
                            f"document {self.name!r} already stored"
                        )
                    conn.execute(
                        "DELETE FROM documents WHERE doc_id = ?",
                        (existing[0],),
                    )
                conn.execute(
                    "UPDATE documents SET name = ? WHERE doc_id = ?",
                    (self.name, doc_id),
                )
                return stamp

        result = self._store._write_retry(
            transaction, f"stream finalize {self.name!r}"
        )
        self._done = True
        return result

    def abort(self) -> None:
        """Best-effort removal of the staging rows after a failure."""
        if self._done:
            return
        self._done = True
        try:
            self._store.delete(self._staging)
        except StorageError:  # already gone (e.g. reclaimed)
            pass


def _stored(row) -> StoredElement:
    elem_id, hierarchy, tag, start, end, attributes = row
    return StoredElement(elem_id, hierarchy, tag, start, end,
                         json.loads(attributes))


def _json_token_prefix(value: str) -> str:
    """An ``instr`` needle matching ``value``'s JSON string token under
    either ``ensure_ascii`` choice.

    ASCII characters encode identically whichever way the writer was
    configured (quotes and backslashes always escape, control characters
    always take their short/``\\uXXXX`` forms), but a non-ASCII character
    is either a raw codepoint or a ``\\uXXXX`` escape depending on the
    writer — so the encoded token is truncated right before the first
    one, keeping the opening quote and dropping the closing quote.  The
    resulting needle is a prefix of every standard JSON encoding of the
    token, so an ``instr`` prefilter built from it can never
    false-negative a row that really holds ``value``.
    """
    token = json.dumps(value, ensure_ascii=False)
    for i, ch in enumerate(token):
        if ord(ch) >= 128:
            return token[:i]
    return token
