"""SQLite-backed persistent store for GODDAG documents.

Stores the relational encoding of :mod:`repro.storage.schema` with the
indexes cross-hierarchy queries need, and answers span/tag/overlap
queries *in the database* — no document reconstruction — which is what
makes selective queries on large stored editions cheap (experiment E7).
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass

from ..core.goddag import GoddagDocument
from ..errors import StorageError
from .schema import (
    DocumentRow,
    ElementRow,
    HierarchyRow,
    decode_document,
    encode_document,
)

_DDL = """
CREATE TABLE IF NOT EXISTS documents (
    doc_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE,
    root_tag TEXT NOT NULL,
    text TEXT NOT NULL,
    root_attributes TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS hierarchies (
    doc_id INTEGER NOT NULL REFERENCES documents(doc_id) ON DELETE CASCADE,
    rank INTEGER NOT NULL,
    name TEXT NOT NULL,
    dtd_source TEXT NOT NULL,
    PRIMARY KEY (doc_id, rank)
);
CREATE TABLE IF NOT EXISTS elements (
    doc_id INTEGER NOT NULL REFERENCES documents(doc_id) ON DELETE CASCADE,
    elem_id INTEGER NOT NULL,
    hierarchy TEXT NOT NULL,
    tag TEXT NOT NULL,
    start INTEGER NOT NULL,
    end INTEGER NOT NULL,
    parent_id INTEGER NOT NULL,
    child_rank INTEGER NOT NULL,
    attributes TEXT NOT NULL,
    PRIMARY KEY (doc_id, elem_id)
);
CREATE INDEX IF NOT EXISTS idx_elements_tag ON elements(doc_id, tag);
CREATE INDEX IF NOT EXISTS idx_elements_span ON elements(doc_id, start, end);
CREATE INDEX IF NOT EXISTS idx_elements_hierarchy
    ON elements(doc_id, hierarchy);
"""


@dataclass(frozen=True)
class StoredElement:
    """A storage-level query result (no GODDAG node is materialized)."""

    elem_id: int
    hierarchy: str
    tag: str
    start: int
    end: int
    attributes: dict[str, str]


class SqliteStore:
    """A persistent multi-document GODDAG store on SQLite."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.executescript(_DDL)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- save / load ---------------------------------------------------------------

    def save(self, document: GoddagDocument, name: str,
             overwrite: bool = False) -> int:
        """Persist ``document`` under ``name``; returns its doc_id."""
        if self.has(name):
            if not overwrite:
                raise StorageError(f"document {name!r} already stored")
            self.delete(name)
        doc_row, hierarchy_rows, element_rows = encode_document(document, name)
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO documents (name, root_tag, text, root_attributes)"
                " VALUES (?, ?, ?, ?)",
                (doc_row.name, doc_row.root_tag, doc_row.text,
                 doc_row.root_attributes),
            )
            doc_id = cursor.lastrowid
            self._conn.executemany(
                "INSERT INTO hierarchies VALUES (?, ?, ?, ?)",
                [(doc_id, row.rank, row.name, row.dtd_source)
                 for row in hierarchy_rows],
            )
            self._conn.executemany(
                "INSERT INTO elements VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [(doc_id, row.elem_id, row.hierarchy, row.tag, row.start,
                  row.end, row.parent_id, row.child_rank, row.attributes)
                 for row in element_rows],
            )
        return doc_id

    def load(self, name: str) -> GoddagDocument:
        """Reconstruct the full GODDAG for ``name``."""
        doc_id, doc_row = self._document_row(name)
        hierarchy_rows = [
            HierarchyRow(rank, hname, dtd)
            for rank, hname, dtd in self._conn.execute(
                "SELECT rank, name, dtd_source FROM hierarchies"
                " WHERE doc_id = ? ORDER BY rank", (doc_id,),
            )
        ]
        element_rows = [
            ElementRow(*row)
            for row in self._conn.execute(
                "SELECT elem_id, hierarchy, tag, start, end, parent_id,"
                " child_rank, attributes FROM elements"
                " WHERE doc_id = ? ORDER BY elem_id", (doc_id,),
            )
        ]
        return decode_document(doc_row, hierarchy_rows, element_rows)

    def delete(self, name: str) -> None:
        doc_id, _ = self._document_row(name)
        with self._conn:
            self._conn.execute("DELETE FROM documents WHERE doc_id = ?", (doc_id,))

    def names(self) -> list[str]:
        return [
            name for (name,) in
            self._conn.execute("SELECT name FROM documents ORDER BY name")
        ]

    def has(self, name: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM documents WHERE name = ?", (name,)
        ).fetchone()
        return row is not None

    def _document_row(self, name: str) -> tuple[int, DocumentRow]:
        row = self._conn.execute(
            "SELECT doc_id, name, root_tag, text, root_attributes"
            " FROM documents WHERE name = ?", (name,),
        ).fetchone()
        if row is None:
            raise StorageError(f"no stored document {name!r}")
        doc_id, name, root_tag, text, root_attributes = row
        return doc_id, DocumentRow(name, root_tag, text, root_attributes)

    # -- storage-level queries (no reconstruction) --------------------------------------

    def count_elements(self, name: str, tag: str | None = None) -> int:
        doc_id, _ = self._document_row(name)
        if tag is None:
            query = "SELECT COUNT(*) FROM elements WHERE doc_id = ?"
            (count,) = self._conn.execute(query, (doc_id,)).fetchone()
        else:
            query = "SELECT COUNT(*) FROM elements WHERE doc_id = ? AND tag = ?"
            (count,) = self._conn.execute(query, (doc_id, tag)).fetchone()
        return count

    def elements_by_tag(self, name: str, tag: str) -> list[StoredElement]:
        doc_id, _ = self._document_row(name)
        return [
            _stored(row)
            for row in self._conn.execute(
                "SELECT elem_id, hierarchy, tag, start, end, attributes"
                " FROM elements WHERE doc_id = ? AND tag = ?"
                " ORDER BY start, end DESC", (doc_id, tag),
            )
        ]

    def elements_intersecting(
        self, name: str, start: int, end: int
    ) -> list[StoredElement]:
        """Solid elements sharing at least one character with [start, end)."""
        doc_id, _ = self._document_row(name)
        return [
            _stored(row)
            for row in self._conn.execute(
                "SELECT elem_id, hierarchy, tag, start, end, attributes"
                " FROM elements WHERE doc_id = ? AND start < ? AND end > ?"
                " ORDER BY start, end DESC", (doc_id, end, start),
            )
        ]

    def overlapping_pairs(
        self, name: str, tag_a: str, tag_b: str
    ) -> list[tuple[StoredElement, StoredElement]]:
        """All properly-overlapping (tag_a, tag_b) pairs, by SQL self-join."""
        doc_id, _ = self._document_row(name)
        rows = self._conn.execute(
            """
            SELECT a.elem_id, a.hierarchy, a.tag, a.start, a.end, a.attributes,
                   b.elem_id, b.hierarchy, b.tag, b.start, b.end, b.attributes
            FROM elements a JOIN elements b
              ON a.doc_id = b.doc_id
             AND a.start < b.end AND b.start < a.end
             AND NOT (a.start <= b.start AND b.end <= a.end)
             AND NOT (b.start <= a.start AND a.end <= b.end)
            WHERE a.doc_id = ? AND a.tag = ? AND b.tag = ?
              AND a.hierarchy != b.hierarchy
              AND a.start < a.end AND b.start < b.end
            """,
            (doc_id, tag_a, tag_b),
        ).fetchall()
        return [(_stored(row[:6]), _stored(row[6:])) for row in rows]

    def text_of(self, name: str, start: int, end: int) -> str:
        """A text window, served straight from the database."""
        doc_id, _ = self._document_row(name)
        (fragment,) = self._conn.execute(
            "SELECT substr(text, ?, ?) FROM documents WHERE doc_id = ?",
            (start + 1, end - start, doc_id),
        ).fetchone()
        return fragment


def _stored(row) -> StoredElement:
    elem_id, hierarchy, tag, start, end, attributes = row
    return StoredElement(elem_id, hierarchy, tag, start, end,
                         json.loads(attributes))
