"""A scripted xTagger session: range selection, tag menus,
prevalidation, undo/redo — with warm query indexes throughout.

The demo's editor lets a user select a fragment and choose markup for
it from any hierarchy; *prevalidation* rejects edits that could never
be completed into a valid document.  This script drives the same engine
programmatically, and keeps an :class:`~repro.index.IndexManager`
attached for the whole session: every edit emits a change record into
the document's delta journal, and the manager absorbs it in place —
queries between edits stay index-served without a single rebuild.

Run:  python examples/authoring_session.py
"""

import tempfile
from pathlib import Path

from repro import GoddagBuilder, GoddagStore
from repro.dtd import parse_dtd
from repro.editing import Editor
from repro.errors import PotentialValidityError
from repro.index import IndexManager
from repro.xpath import ExtendedXPath

EDITION_DTD = parse_dtd(
    """
    <!ELEMENT r (page+)>
    <!ELEMENT page (head?, line+)>
    <!ELEMENT head (#PCDATA)>
    <!ELEMENT line (#PCDATA | pb | dmg)*>
    <!ELEMENT pb EMPTY>
    <!ELEMENT dmg (#PCDATA)>
    <!ATTLIST dmg type (rubbed | torn) "rubbed">
    """,
    name="edition",
)

TEXT = "On the Consolation first the prisoner laments then philosophy appears"


def main() -> None:
    builder = GoddagBuilder(TEXT)
    builder.add_hierarchy("phys", dtd=EDITION_DTD)
    builder.add_hierarchy("notes")  # free hierarchy, no DTD
    editor = Editor(builder.build())
    # Attach the indexes up front: they ride along for the whole session.
    manager = IndexManager.for_document(editor.document)

    print("=== tagging the page ===")
    editor.insert_markup("phys", "page", 0, len(TEXT))
    start, end = editor.find_text("On the Consolation")
    editor.insert_markup("phys", "head", start, end)
    start, end = editor.find_text("first the prisoner laments")
    editor.insert_markup("phys", "line", start, end)
    start, end = editor.find_text("then philosophy appears")
    editor.insert_markup("phys", "line", start, end)
    print("\n".join("  " + line for line in editor.transcript()))

    print("\n=== the tag menu (what prevalidation allows here) ===")
    start, end = editor.find_text("prisoner")
    print(f"select {TEXT[start:end]!r}; insertable tags:",
          sorted(editor.suggest_tags("phys", start, end)))

    print("\n=== prevalidation rejects hopeless edits ===")
    try:
        # A second head after the lines can never satisfy (head?, line+).
        s, e = editor.find_text("philosophy")
        editor.insert_markup("phys", "head", s, e)
    except PotentialValidityError as exc:
        print("rejected:", exc)

    print("\n=== cross-hierarchy annotation is unrestricted ===")
    s, e = editor.find_text("laments then philosophy")
    note = editor.insert_markup("notes", "theme", s, e)
    print(f"inserted <theme> over {note.text!r} "
          f"(overlaps {[el.tag for el in note.overlapping()]})")

    print("\n=== undo / redo ===")
    print("undo:", editor.undo())
    print("undo:", editor.undo())
    print("redo:", editor.redo())

    print("\n=== final validity report ===")
    print("classical violations:  ", editor.validate("phys") or "none")
    print("potential-validity:    ",
          editor.check_potential_validity("phys") or "ok")

    print("\n=== warm-index editing (the delta protocol) ===")
    # Every edit above emitted a change record; the attached manager
    # absorbed them in place instead of rebuilding.  Queries mid-session
    # are index-served and always byte-identical to the unindexed engine.
    lines = ExtendedXPath("//line").nodes(editor.document)
    print(f"index-served //line -> {len(lines)} hits")
    census = manager.stats()["counts"]
    print(f"builds: {census['index.builds']}"
          f"  deltas applied: {census['index.deltas']}")

    # Persisting keeps the stored index in step too: save_indexed applies
    # the same deltas to the backend (row-level on sqlite, a sidecar
    # re-stamp on the binary backend) instead of dropping the index.
    with tempfile.TemporaryDirectory() as tmp:
        with GoddagStore(Path(tmp) / "edition.sqlite") as store:
            store.save_indexed(editor.document, "consolation", manager)
            editor.set_attribute(lines[0], "n", "1")
            store.save_indexed(editor.document, "consolation", manager)
            print("stored <line> count after edit + delta-save:",
                  store.count_tag("consolation", "line"))


if __name__ == "__main__":
    main()
