"""Representation tour: the same document through every encoding.

The TEI Guidelines' workarounds for overlap (fragmentation, milestones)
and the modern alternatives (distributed documents, standoff) all
round-trip through the GODDAG without loss — and the framework
quantifies what each workaround costs.

Run:  python examples/tei_roundtrip.py
"""

from repro.compare import documents_isomorphic
from repro.sacx import (
    parse_concurrent,
    parse_fragmentation,
    parse_milestones,
    parse_standoff,
)
from repro.serialize import (
    export_distributed,
    export_fragmentation,
    export_milestones,
    export_standoff,
    fragment_blowup,
    milestone_count,
)
from repro.workloads import WorkloadSpec, generate, workload_summary


def main() -> None:
    doc = generate(WorkloadSpec(words=300, overlap_density=0.3, seed=42))
    print("synthetic manuscript:", workload_summary(doc))

    print("\n--- distributed documents (the framework's native form) ---")
    sources = export_distributed(doc)
    for name, source in sources.items():
        print(f"[{name}] {len(source)} chars")
    assert documents_isomorphic(doc, parse_concurrent(sources))
    print("round-trip: OK")

    print("\n--- TEI fragmentation (glue ids) ---")
    fragmented = export_fragmentation(doc)
    print(f"single document: {len(fragmented)} chars")
    print(f"fragment blow-up: {fragment_blowup(doc):.2f}x "
          "(elements split by overlap)")
    assert documents_isomorphic(doc, parse_fragmentation(fragmented))
    print("round-trip: OK")

    print("\n--- TEI milestones (paired empty markers) ---")
    milestoned = export_milestones(doc, primary="physical")
    print(f"single document: {len(milestoned)} chars")
    print(f"marker elements: {milestone_count(doc, 'physical')} "
          "(structure demoted to leaves)")
    assert documents_isomorphic(doc, parse_milestones(milestoned))
    print("round-trip: OK")

    print("\n--- standoff JSON ---")
    standoff = export_standoff(doc)
    print(f"JSON: {len(standoff)} chars")
    assert documents_isomorphic(doc, parse_standoff(standoff))
    print("round-trip: OK")

    print("\n--- the full pipeline, chained ---")
    step = parse_concurrent(export_distributed(doc))
    step = parse_fragmentation(export_fragmentation(step))
    step = parse_milestones(export_milestones(step, primary="verse"))
    step = parse_standoff(export_standoff(step))
    assert documents_isomorphic(doc, step)
    print("distributed -> fragmentation -> milestones -> standoff: lossless")


if __name__ == "__main__":
    main()
