"""Persistent storage: save a generated edition, query it in storage.

The paper lists persistent storage as work underway; this example runs
the layer the repository builds for it: a SQLite store with SQL-side
span/overlap queries, and a binary one-file-per-document archive whose
element table can be scanned without loading the document.

Run:  python examples/storage_pipeline.py
"""

import tempfile
import time
from pathlib import Path

from repro.storage import GoddagStore, file_stats, save_file, scan_spans
from repro.workloads import WorkloadSpec, generate, workload_summary


def main() -> None:
    doc = generate(WorkloadSpec(words=4000, overlap_density=0.25))
    print("document:", workload_summary(doc))

    with tempfile.TemporaryDirectory() as tmp:
        print("\n--- sqlite backend ---")
        with GoddagStore(str(Path(tmp) / "editions.db")) as store:
            t0 = time.perf_counter()
            store.save(doc, "boethius-36v")
            print(f"saved in {1000 * (time.perf_counter() - t0):.1f} ms")

            t0 = time.perf_counter()
            hits = store.elements_intersecting("boethius-36v", 100, 160)
            dt_storage = time.perf_counter() - t0
            print(f"span query [100,160) in storage: {len(hits)} elements, "
                  f"{1000 * dt_storage:.2f} ms")

            t0 = time.perf_counter()
            loaded = store.load("boethius-36v")
            dt_load = time.perf_counter() - t0
            print(f"full load: {loaded.element_count()} elements, "
                  f"{1000 * dt_load:.1f} ms "
                  f"({dt_load / dt_storage:.0f}x the storage query)")

            pairs = store.overlapping_pairs("boethius-36v", "vline", "line")
            print(f"overlap join in SQL: {len(pairs)} (vline, line) pairs")

        print("\n--- binary backend ---")
        path = Path(tmp) / "edition.gdag"
        save_file(doc, path, "boethius-36v")
        print("file layout:", file_stats(path))
        t0 = time.perf_counter()
        records = scan_spans(path, 100, 160)
        print(f"table scan without load: {len(records)} elements, "
              f"{1000 * (time.perf_counter() - t0):.2f} ms")


if __name__ == "__main__":
    main()
