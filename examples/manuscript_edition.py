"""The paper's Figure 1 scenario: an Old English manuscript fragment
with four concurrent encodings (physical lines, words, restorations,
damages), united into one GODDAG and queried.

Run:  python examples/manuscript_edition.py
"""

from repro.dtd import validate_document
from repro.filters import extract_range, project
from repro.workloads import FRAGMENT_SOURCES, figure_one_document
from repro.xpath import ExtendedXPath, xpath


def main() -> None:
    print("=== the four encodings (same text, conflicting markup) ===")
    for name, source in FRAGMENT_SOURCES.items():
        print(f"[{name}]")
        print("   ", source)

    doc = figure_one_document()
    print("\n=== the GODDAG uniting them (Figure 2) ===")
    for key, value in doc.stats().items():
        print(f"  {key}: {value}")

    print("\n=== the queries single-hierarchy XML cannot ask ===")
    # Which words did the restoration touch (including partially)?
    words = xpath(doc, "//res/contained::w | //res/overlapping::w")
    print("restored words:    ", [w.text for w in words])

    # Which words are damaged, and what part of each?
    dmg = xpath(doc, "//dmg")[0]
    for word in xpath(doc, "//dmg/contained::w | //dmg/overlapping::w"):
        shared = ExtendedXPath("overlap-text(//dmg)").evaluate(doc, word)
        print(f"damaged word:       {word.text!r} (damaged part: {shared!r})")

    # Which manuscript lines does the damage cross?
    lines = xpath(doc, "//dmg/overlapping::line | //dmg/containing::line")
    print("damage crosses:    ", [f"line {e.get('n')}" for e in lines])

    # Every leaf has one parent per hierarchy - the GODDAG's multi-parent
    # navigation.
    leaf = doc.leaf_at(doc.text.index("dagum"))
    print(f"parents of {leaf.text!r}:",
          sorted(p.tag for p in leaf.parents()))

    print("\n=== validation against the per-hierarchy DTDs ===")
    violations = validate_document(doc)
    print("violations:", violations or "none - the edition is valid")

    print("\n=== filtering (the demo's partial views) ===")
    physical_only = project(doc, ["physical"])
    print("projected to physical:", physical_only)
    window = extract_range(doc, 30, 58)
    print("extracted [30,58):   ", repr(window.text))
    clipped = [e.tag for e in window.elements() if "sacx-clipped" in e.attributes]
    print("clipped elements:    ", clipped)


if __name__ == "__main__":
    main()
