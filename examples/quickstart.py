"""Quickstart: build a concurrent document, query it, export it.

Run:  python examples/quickstart.py
"""

from repro import GoddagBuilder
from repro.serialize import export_distributed, export_fragmentation
from repro.xpath import ExtendedXPath, xpath


def main() -> None:
    # One text, two conflicting hierarchies: physical lines vs a phrase
    # that crosses a line break — the configuration a single XML tree
    # cannot express.
    text = "sing a song of sixpence a pocket full of rye"
    builder = GoddagBuilder(text)
    builder.add_hierarchy("physical")
    builder.add_hierarchy("linguistic")
    builder.add_annotation("physical", "line", 0, 23)
    builder.add_annotation("physical", "line", 24, 44)
    builder.add_annotation("linguistic", "phrase", 15, 31)  # "of sixpence a po..."
    builder.add_annotation("linguistic", "w", 15, 17)
    builder.add_annotation("linguistic", "w", 18, 26)
    doc = builder.build()

    print("document:", doc)
    print("leaves:  ", [leaf.text for leaf in doc.leaves()])

    # The overlapping axis: which lines does the phrase straddle?
    for line in xpath(doc, "//phrase/overlapping::line"):
        print(f"phrase overlaps line [{line.start},{line.end}): {line.text!r}")

    # Compiled queries are reusable; extension functions know spans.
    query = ExtendedXPath("overlap-text(//line[1])")
    phrase = xpath(doc, "//phrase")[0]
    print("shared text with line 1:", repr(query.evaluate(doc, phrase)))

    # Export: one well-formed XML document per hierarchy...
    for name, source in export_distributed(doc).items():
        print(f"[{name}] {source}")
    # ...or a single fragmented document with glue attributes.
    print("[fragmented]", export_fragmentation(doc, hierarchy_attr=False))


if __name__ == "__main__":
    main()
